#include "sim/sweep_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace fefet::sim {
namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr char kLinePrefix[] = "{\"crc\":\"";      // + 8 hex digits
constexpr char kLineMiddle[] = "\",\"rec\":";      // + body + '}'
constexpr std::size_t kHexDigits = 8;
// Offset of the body within a record line.
constexpr std::size_t kBodyOffset =
    sizeof(kLinePrefix) - 1 + kHexDigits + sizeof(kLineMiddle) - 1;

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

bool jsonUnescape(std::string_view escaped, std::string* out) {
  out->clear();
  out->reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= escaped.size()) return false;
    switch (escaped[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (i + 4 >= escaped.size()) return false;
        unsigned code = 0;
        for (int k = 1; k <= 4; ++k) {
          const char h = escaped[i + static_cast<std::size_t>(k)];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (code > 0xFF) return false;  // payloads are byte strings
        out->push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

bool parseJournalU64(const std::string& body, const char* key,
                     std::uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  if (i >= body.size() || !std::isdigit(static_cast<unsigned char>(body[i])))
    return false;
  std::uint64_t value = 0;
  for (; i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]));
       ++i) {
    value = value * 10 + static_cast<std::uint64_t>(body[i] - '0');
  }
  *out = value;
  return true;
}

bool parseJournalString(const std::string& body, const char* key,
                        std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t end = pos + needle.size();
  while (end < body.size()) {
    if (body[end] == '\\') {
      end += 2;
      continue;
    }
    if (body[end] == '"') break;
    ++end;
  }
  if (end >= body.size()) return false;
  return jsonUnescape(
      std::string_view(body).substr(pos + needle.size(),
                                    end - pos - needle.size()),
      out);
}

bool parseJournalLine(const std::string& line, std::string* body) {
  if (line.size() < kBodyOffset + 1) return false;
  if (line.compare(0, sizeof(kLinePrefix) - 1, kLinePrefix) != 0) return false;
  std::uint32_t storedCrc = 0;
  for (std::size_t i = 0; i < kHexDigits; ++i) {
    const char h = line[sizeof(kLinePrefix) - 1 + i];
    storedCrc <<= 4;
    if (h >= '0' && h <= '9') storedCrc |= static_cast<std::uint32_t>(h - '0');
    else if (h >= 'a' && h <= 'f') storedCrc |= static_cast<std::uint32_t>(h - 'a' + 10);
    else return false;
  }
  if (line.compare(sizeof(kLinePrefix) - 1 + kHexDigits,
                   sizeof(kLineMiddle) - 1, kLineMiddle) != 0)
    return false;
  if (line.back() != '}') return false;
  *body = line.substr(kBodyOffset, line.size() - kBodyOffset - 1);
  return crc32(*body) == storedCrc;
}

std::string journalHeaderBody(std::size_t points, std::uint64_t baseSeed,
                              std::uint64_t configDigest) {
  std::ostringstream os;
  os << "{\"type\":\"header\",\"version\":1,\"points\":" << points
     << ",\"baseSeed\":" << baseSeed << ",\"configDigest\":" << configDigest
     << "}";
  return os.str();
}

std::string journalPointBody(std::size_t index, std::string_view payload) {
  std::ostringstream os;
  os << "{\"type\":\"point\",\"index\":" << index << ",\"payload\":\""
     << jsonEscape(payload) << "\"}";
  return os.str();
}

std::string renderJournalLine(const std::string& body) {
  return kLinePrefix + hex32(crc32(body)) + kLineMiddle + body + "}\n";
}

void fsyncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirFd < 0) return;
  ::fsync(dirFd);  // best effort — see header comment
  ::close(dirFd);
}

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string jsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[7];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

SweepJournalLoad SweepJournal::load(const std::string& path,
                                    std::size_t expectedPoints,
                                    std::uint64_t baseSeed,
                                    std::uint64_t configDigest,
                                    JournalLoadMode mode) {
  const bool lenient = mode == JournalLoadMode::kLenient;
  SweepJournalLoad result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.warning = "journal " + path + " does not exist; starting fresh";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  if (contents.empty()) {
    result.warning = "journal " + path + " is empty; starting fresh";
    return result;
  }

  std::size_t offset = 0;
  bool sawHeader = false;
  std::vector<bool> seen(expectedPoints, false);
  while (offset < contents.size()) {
    const auto newline = contents.find('\n', offset);
    if (newline == std::string::npos) {
      // No terminator: a record was being written when the process died.
      result.warning = "journal " + path + " has a torn tail record; " +
                       "truncating to the last complete record";
      break;
    }
    const std::string line = contents.substr(offset, newline - offset);
    std::string body;
    if (!parseJournalLine(line, &body)) {
      if (lenient && !line.empty()) ++result.skippedLines;
      if (lenient) {
        // Multi-epoch journal: resync at the next line.  Empty lines are
        // the resync markers appended on every lease-holder handover.
        offset = newline + 1;
        if (sawHeader) result.validBytes = offset;
        continue;
      }
      if (!sawHeader) {
        result.warning =
            "journal " + path + " has no valid header; starting fresh";
        return result;
      }
      result.warning = "journal " + path +
                       " has a corrupt record; truncating to the last good "
                       "record";
      break;
    }
    if (!sawHeader) {
      std::uint64_t version = 0, points = 0, seed = 0, digest = 0;
      const bool parsed = body.find("\"type\":\"header\"") != std::string::npos &&
                          parseJournalU64(body,"version", &version) &&
                          parseJournalU64(body,"points", &points) &&
                          parseJournalU64(body,"baseSeed", &seed) &&
                          parseJournalU64(body,"configDigest", &digest);
      if (!parsed || version != 1) {
        result.warning =
            "journal " + path + " has no valid header; starting fresh";
        return result;
      }
      if (points != expectedPoints || seed != baseSeed ||
          digest != configDigest) {
        result.warning = "journal " + path +
                         " was written by a different run configuration "
                         "(points/seed/config digest mismatch); starting fresh";
        return result;
      }
      sawHeader = true;
    } else {
      std::uint64_t index = 0;
      std::string payload;
      const bool parsed = body.find("\"type\":\"point\"") != std::string::npos &&
                          parseJournalU64(body,"index", &index) &&
                          parseJournalString(body, "payload", &payload) &&
                          index < expectedPoints;
      if (!parsed) {
        if (lenient) {
          ++result.skippedLines;
          offset = newline + 1;
          result.validBytes = offset;
          continue;
        }
        result.warning = "journal " + path +
                         " has a malformed point record; truncating to the "
                         "last good record";
        break;
      }
      if (seen[index]) {
        ++result.duplicates;
        result.warning = "journal " + path + " repeats point " +
                         std::to_string(index) + "; keeping the first record";
      } else {
        seen[index] = true;
        result.records.push_back({static_cast<std::size_t>(index),
                                  std::move(payload)});
      }
    }
    offset = newline + 1;
    result.validBytes = offset;
  }
  result.usable = sawHeader;
  if (!sawHeader) {
    result.warning = "journal " + path + " holds no usable records; starting fresh";
  }
  return result;
}

SweepJournal::SweepJournal(const std::string& path, std::size_t points,
                           std::uint64_t baseSeed, std::uint64_t configDigest,
                           const SweepJournalLoad* resumeFrom)
    : path_(path) {
  // O_APPEND makes every record write land atomically at EOF, so two
  // writers (a zombie lease holder and its successor) can interleave only
  // at line granularity, never mid-record.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw SimulationError("cannot open sweep journal " + path + ": " +
                          std::strerror(errno));
  }
  // The records are fsynced per append, but a freshly created file's NAME
  // lives in the directory — without a directory fsync the whole journal
  // can vanish after power loss even though every record was durable.
  fsyncParentDir(path);
  const bool resuming = resumeFrom != nullptr && resumeFrom->usable;
  const off_t keep =
      resuming ? static_cast<off_t>(resumeFrom->validBytes) : 0;
  if (::ftruncate(fd_, keep) != 0 ||
      ::lseek(fd_, 0, SEEK_END) == static_cast<off_t>(-1)) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SimulationError("cannot prepare sweep journal " + path + ": " +
                          std::strerror(err));
  }
  if (!resuming) {
    appendLine(journalHeaderBody(points, baseSeed, configDigest));
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::appendPoint(std::size_t index, std::string_view payload) {
  appendLine(journalPointBody(index, payload));
}

void SweepJournal::appendLine(const std::string& body) {
  const std::string line = renderJournalLine(body);
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SimulationError("cannot append to sweep journal " + path_ + ": " +
                            std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // A record must be durable before the engine reports the point done —
  // the same discipline as nvp/CheckpointManager's commit word.
  ::fsync(fd_);
}

}  // namespace fefet::sim
