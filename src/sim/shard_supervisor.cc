#include "sim/shard_supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace fefet::sim {
namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& restartCounter() {
  static obs::Counter& c = obs::Metrics::counter("fefet.shard.worker_restarts");
  return c;
}

/// Replace every "{slot}" in `argv` with the worker slot number, so one
/// argv template yields per-worker identities (owner names, chaos
/// streams) that are stable across restarts and independent of pids.
std::vector<std::string> substituteSlot(const std::vector<std::string>& argv,
                                        int slot) {
  std::vector<std::string> out;
  out.reserve(argv.size());
  const std::string token = "{slot}";
  for (const auto& arg : argv) {
    std::string s = arg;
    for (auto pos = s.find(token); pos != std::string::npos;
         pos = s.find(token)) {
      s.replace(pos, token.size(), std::to_string(slot));
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// One supervised worker seat.
struct Slot {
  pid_t pid = -1;
  bool alive = false;
  bool finished = false;       ///< exited cleanly — never restarted
  bool pendingRestart = false;
  int consecutiveCrashes = 0;
  Clock::time_point restartAt{};
};

}  // namespace

ShardSupervisor::ShardSupervisor(ShardSupervisorOptions options)
    : options_(std::move(options)) {
  FEFET_REQUIRE(options_.workers >= 1, "shard supervisor needs >= 1 workers");
}

pid_t ShardSupervisor::spawn(const std::vector<std::string>& argv, int slot) {
  const std::vector<std::string> args = substituteSlot(argv, slot);
  std::vector<char*> cargv;
  cargv.reserve(args.size() + 1);
  for (const auto& a : args) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec failed: report through the exit status, never run the parent's
    // code path (atexit handlers, buffered stdio) in the child.
    ::_exit(127);
  }
  if (options_.onSpawn) options_.onSpawn(slot, pid);
  return pid;
}

ShardSupervisorReport ShardSupervisor::run(
    const std::vector<std::string>& workerArgv) {
  FEFET_REQUIRE(!workerArgv.empty(), "shard supervisor needs a worker argv");
  ShardLeaseBoard::create(options_.board);
  ShardLeaseBoard board(options_.board);

  ShardSupervisorReport report;
  std::vector<Slot> slots(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    const pid_t pid = spawn(workerArgv, i);
    if (pid < 0) {
      if (i == 0) {
        throw SimulationError(std::string("shard supervisor cannot spawn "
                                          "workers: ") +
                              std::strerror(errno));
      }
      FEFET_WARN() << "shard supervisor: cannot spawn worker " << i << ": "
                   << std::strerror(errno);
      continue;
    }
    slots[static_cast<std::size_t>(i)].pid = pid;
    slots[static_cast<std::size_t>(i)].alive = true;
    ++report.spawns;
  }

  std::set<std::pair<int, std::uint64_t>> stallsSeen;
  while (true) {
    // Reap: a clean exit is a finished worker, anything else is a crash
    // that spends from the restart budget (after backoff).
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.alive) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped != slot.pid) continue;
      slot.alive = false;
      slot.pid = -1;
      const bool crashed =
          WIFSIGNALED(status) ||
          (WIFEXITED(status) && WEXITSTATUS(status) != 0);
      if (!crashed) {
        slot.finished = true;
        slot.consecutiveCrashes = 0;
        continue;
      }
      ++report.crashes;
      const char* how = WIFSIGNALED(status) ? "signal" : "exit status";
      const int code =
          WIFSIGNALED(status) ? WTERMSIG(status) : WEXITSTATUS(status);
      if (board.state().allComplete()) {
        // A chaos kill after the last point: nothing left to redo.
        slot.finished = true;
        continue;
      }
      if (report.restarts >= options_.restartBudget) {
        report.restartBudgetExhausted = true;
        FEFET_WARN() << "shard supervisor: worker " << i << " died (" << how
                     << " " << code << ") with the restart budget exhausted; "
                     << "degrading to partial results";
        continue;
      }
      const double backoff = std::min(
          options_.backoffMaxSeconds,
          options_.backoffInitialSeconds *
              static_cast<double>(1 << std::min(slot.consecutiveCrashes, 20)));
      ++slot.consecutiveCrashes;
      slot.pendingRestart = true;
      slot.restartAt = Clock::now() + std::chrono::duration_cast<
                                          Clock::duration>(
                                          std::chrono::duration<double>(
                                              backoff));
      FEFET_WARN() << "shard supervisor: worker " << i << " died (" << how
                   << " " << code << "); restarting in " << backoff << " s ("
                   << options_.restartBudget - report.restarts
                   << " restarts left)";
    }

    const ShardBoardState state = board.state();
    if (state.allComplete()) break;
    if (options_.deadline.expired()) {
      report.deadlineExpired = true;
      break;
    }

    // Heartbeat monitoring: an expired lease whose epoch nobody has
    // stolen yet, while worker processes are still alive, is a stall —
    // the peers' steal path will reclaim it, but the operator should see
    // it in the log and the report.
    const std::uint64_t now = shardClockNanos();
    for (std::size_t k = 0; k < state.shards.size(); ++k) {
      const ShardLeaseState& s = state.shards[k];
      if (!s.held || s.expiresAtNs > now) continue;
      if (!stallsSeen.insert({static_cast<int>(k), s.token}).second) continue;
      ++report.stalls;
      FEFET_WARN() << "shard supervisor: lease on shard " << k << " (owner "
                   << s.owner << ", token " << s.token
                   << ") expired without release — holder crashed or "
                      "stalled; peers may reclaim it";
    }

    bool anyAlive = false;
    bool anyPending = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      anyAlive = anyAlive || slot.alive;
      if (!slot.pendingRestart) continue;
      if (Clock::now() < slot.restartAt) {
        anyPending = true;
        continue;
      }
      slot.pendingRestart = false;
      const pid_t pid = spawn(workerArgv, static_cast<int>(i));
      if (pid < 0) {
        FEFET_WARN() << "shard supervisor: respawn of worker " << i
                     << " failed: " << std::strerror(errno);
        continue;
      }
      slot.pid = pid;
      slot.alive = true;
      anyAlive = true;
      ++report.spawns;
      ++report.restarts;
      if (obs::Metrics::enabled()) restartCounter().increment();
    }
    if (!anyAlive && !anyPending) break;  // degraded: nobody left to run

    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.pollSeconds));
  }

  // Teardown: ask stragglers to stop (their journals are already
  // durable), escalate to SIGKILL after a grace period, reap everything.
  for (auto& slot : slots) {
    if (slot.alive) ::kill(slot.pid, SIGTERM);
  }
  const auto grace = Clock::now() + std::chrono::seconds(2);
  for (auto& slot : slots) {
    if (!slot.alive) continue;
    int status = 0;
    while (::waitpid(slot.pid, &status, WNOHANG) == 0) {
      if (Clock::now() > grace) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    slot.alive = false;
  }

  report.merge = mergeShardJournals(options_.board);
  return report;
}

}  // namespace fefet::sim
