// shard_supervisor.h — fork/exec worker supervision for sharded sweeps.
//
// The supervisor is the process-level sibling of SweepEngine's straggler
// watchdog: it creates (or resumes) a shard lease board, spawns N worker
// processes that each run the shard-lease worker loop (sim/shard_lease.h)
// against the same board, and then:
//
//  * reaps exits — a worker that exits cleanly is done; one that dies on
//    a signal or a nonzero status is CRASHED and gets restarted with
//    exponential backoff, spending from a global restart budget;
//  * monitors heartbeats — a lease that stays expired while its holder
//    process is still alive is logged as a stalled worker (the board's
//    expiry/steal machinery already lets peers reclaim the range);
//  * degrades gracefully — when the budget is exhausted or the deadline
//    expires, remaining workers are terminated and whatever the shard
//    journals hold is merged into a PARTIAL result, mirroring the sweep
//    engine's kCollectAndContinue policy (the caller sees per-shard
//    tallies and a missing-point count instead of an exception);
//  * merges — on exit the per-shard journals are folded first-wins into
//    one index-ordered record list with a results CRC32 that is
//    bit-identical to the single-process run's fingerprint when the
//    board completed.
//
// Crash safety end to end: SIGKILL the supervisor and rerun it — the
// board header matches, leases expire, the new workers reclaim and the
// merge is unchanged.  SIGKILL any worker — its lease expires, a peer
// (or its restarted self) re-runs the unfinished tail of its range, and
// first-wins dedup keeps the merge bit-identical.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/deadline.h"
#include "sim/shard_lease.h"

namespace fefet::sim {

struct ShardSupervisorOptions {
  ShardBoardConfig board;
  int workers = 2;
  /// Total restarts allowed across all workers (the crash budget).
  int restartBudget = 16;
  double backoffInitialSeconds = 0.05;  ///< doubles per consecutive crash
  double backoffMaxSeconds = 2.0;
  /// Lease ttl the workers were configured with — used only to flag
  /// stalled-but-alive workers (lease expired, process running).
  double leaseTtlSeconds = 5.0;
  Deadline deadline;           ///< whole-run budget (partial merge after)
  double pollSeconds = 0.05;   ///< supervision loop period
  /// Test hook: observes every spawn (slot, pid) — lets a test SIGKILL a
  /// specific worker mid-range.
  std::function<void(int slot, pid_t pid)> onSpawn;
};

/// What one supervised run accomplished.
struct ShardSupervisorReport {
  ShardMergeResult merge;      ///< first-wins merged shard journals
  int spawns = 0;              ///< worker processes started (incl. restarts)
  int restarts = 0;            ///< crash-triggered respawns
  int crashes = 0;             ///< abnormal worker exits observed
  int stalls = 0;              ///< expired-lease-while-alive observations
  bool restartBudgetExhausted = false;
  bool deadlineExpired = false;
  /// True when every shard completed (merge.complete); false means the
  /// run degraded to partial results.
  bool complete() const { return merge.complete; }
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(ShardSupervisorOptions options);

  /// Create/resume the board, then spawn `workers` processes executing
  /// `workerArgv` (argv[0] is the binary path; the vector is passed to
  /// execv verbatim — it must put the worker into shard-lease mode
  /// against options.board.dir).  Blocks until the board completes, the
  /// restart budget is exhausted with no live workers, or the deadline
  /// expires; terminates stragglers and returns the merged report.
  /// Throws SimulationError only on spawn-impossible errors (fork/exec
  /// of the first worker failing outright).
  ShardSupervisorReport run(const std::vector<std::string>& workerArgv);

 private:
  pid_t spawn(const std::vector<std::string>& argv, int slot);

  ShardSupervisorOptions options_;
};

}  // namespace fefet::sim
