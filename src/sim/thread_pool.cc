#include "sim/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/clock.h"
#include "obs/metrics.h"

namespace fefet::sim {

namespace {

obs::Histogram& queueWaitHistogram() {
  static constexpr double kWaitEdges[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                          0.01, 0.1,  1.0,  10.0};
  static obs::Histogram& h =
      obs::Metrics::histogram("fefet.sweep.queue_wait_s", kWaitEdges);
  return h;
}

}  // namespace

int defaultThreadCount() {
  if (const char* env = std::getenv("FEFET_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  workAvailable_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    queue_.push_back(QueuedJob{std::move(job), monotonicNanos()});
  }
  workAvailable_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allIdle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    workAvailable_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with a drained queue
    QueuedJob queued = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    if (obs::Metrics::enabled()) {
      queueWaitHistogram().observe(
          static_cast<double>(monotonicNanos() - queued.enqueuedNs) / 1e9);
    }
    queued.job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) allIdle_.notify_all();
  }
}

}  // namespace fefet::sim
