// thread_pool.h — fixed-size worker pool for the sweep engine.
//
// Deliberately minimal: N threads, one FIFO job queue, submit() + wait().
// Jobs must not throw (SweepEngine catches per-point exceptions before they
// reach the pool); a job that does throw anyway terminates the process,
// which is the correct behavior for a programming error in the harness.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fefet::sim {

/// Number of worker threads to use by default: the FEFET_THREADS
/// environment variable when set (>= 1), otherwise the hardware
/// concurrency (>= 1).
int defaultThreadCount();

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job.  Thread-safe; may be called from worker threads.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait();

  int threadCount() const { return static_cast<int>(workers_.size()); }

 private:
  void workerLoop();

  /// A queued job plus its submit timestamp; the dequeue side feeds the
  /// gap into the fefet.sweep.queue_wait_s histogram.
  struct QueuedJob {
    std::function<void()> job;
    std::uint64_t enqueuedNs = 0;
  };

  std::mutex mutex_;
  std::condition_variable workAvailable_;
  std::condition_variable allIdle_;
  std::deque<QueuedJob> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;      ///< jobs currently executing
  bool shutdown_ = false;
};

}  // namespace fefet::sim
