file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_demo.dir/checkpoint_demo.cpp.o"
  "CMakeFiles/checkpoint_demo.dir/checkpoint_demo.cpp.o.d"
  "checkpoint_demo"
  "checkpoint_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
