# Empty dependencies file for checkpoint_demo.
# This may be replaced when dependencies are built.
