# Empty dependencies file for array_demo.
# This may be replaced when dependencies are built.
