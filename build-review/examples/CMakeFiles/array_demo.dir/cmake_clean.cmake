file(REMOVE_RECURSE
  "CMakeFiles/array_demo.dir/array_demo.cpp.o"
  "CMakeFiles/array_demo.dir/array_demo.cpp.o.d"
  "array_demo"
  "array_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
