# Empty compiler generated dependencies file for nvp_demo.
# This may be replaced when dependencies are built.
