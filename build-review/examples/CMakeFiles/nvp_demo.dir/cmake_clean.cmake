file(REMOVE_RECURSE
  "CMakeFiles/nvp_demo.dir/nvp_demo.cpp.o"
  "CMakeFiles/nvp_demo.dir/nvp_demo.cpp.o.d"
  "nvp_demo"
  "nvp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
