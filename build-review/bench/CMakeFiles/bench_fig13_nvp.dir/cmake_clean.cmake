file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_nvp.dir/bench_fig13_nvp.cc.o"
  "CMakeFiles/bench_fig13_nvp.dir/bench_fig13_nvp.cc.o.d"
  "bench_fig13_nvp"
  "bench_fig13_nvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
