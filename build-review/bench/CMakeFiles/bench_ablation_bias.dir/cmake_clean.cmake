file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bias.dir/bench_ablation_bias.cc.o"
  "CMakeFiles/bench_ablation_bias.dir/bench_ablation_bias.cc.o.d"
  "bench_ablation_bias"
  "bench_ablation_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
