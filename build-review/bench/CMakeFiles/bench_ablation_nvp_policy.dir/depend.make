# Empty dependencies file for bench_ablation_nvp_policy.
# This may be replaced when dependencies are built.
