# Empty compiler generated dependencies file for bench_fig03_fefet_volatile.
# This may be replaced when dependencies are built.
