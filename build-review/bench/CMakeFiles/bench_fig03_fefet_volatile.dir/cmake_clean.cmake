file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_fefet_volatile.dir/bench_fig03_fefet_volatile.cc.o"
  "CMakeFiles/bench_fig03_fefet_volatile.dir/bench_fig03_fefet_volatile.cc.o.d"
  "bench_fig03_fefet_volatile"
  "bench_fig03_fefet_volatile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_fefet_volatile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
