# Empty dependencies file for bench_fig08_sensing.
# This may be replaced when dependencies are built.
