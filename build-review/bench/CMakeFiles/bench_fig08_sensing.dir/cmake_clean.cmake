file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sensing.dir/bench_fig08_sensing.cc.o"
  "CMakeFiles/bench_fig08_sensing.dir/bench_fig08_sensing.cc.o.d"
  "bench_fig08_sensing"
  "bench_fig08_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
