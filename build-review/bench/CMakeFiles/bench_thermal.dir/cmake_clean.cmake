file(REMOVE_RECURSE
  "CMakeFiles/bench_thermal.dir/bench_thermal.cc.o"
  "CMakeFiles/bench_thermal.dir/bench_thermal.cc.o.d"
  "bench_thermal"
  "bench_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
