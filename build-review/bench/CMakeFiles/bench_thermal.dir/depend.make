# Empty dependencies file for bench_thermal.
# This may be replaced when dependencies are built.
