
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_retention.cc" "bench/CMakeFiles/bench_retention.dir/bench_retention.cc.o" "gcc" "bench/CMakeFiles/bench_retention.dir/bench_retention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/fefet_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nvp/CMakeFiles/fefet_nvp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/layout/CMakeFiles/fefet_layout.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spice/CMakeFiles/fefet_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ferro/CMakeFiles/fefet_ferro.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xtor/CMakeFiles/fefet_xtor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fefet_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/fefet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
