# Empty dependencies file for bench_retention.
# This may be replaced when dependencies are built.
