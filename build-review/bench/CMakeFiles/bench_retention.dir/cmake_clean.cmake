file(REMOVE_RECURSE
  "CMakeFiles/bench_retention.dir/bench_retention.cc.o"
  "CMakeFiles/bench_retention.dir/bench_retention.cc.o.d"
  "bench_retention"
  "bench_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
