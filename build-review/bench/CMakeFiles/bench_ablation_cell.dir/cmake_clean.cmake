file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cell.dir/bench_ablation_cell.cc.o"
  "CMakeFiles/bench_ablation_cell.dir/bench_ablation_cell.cc.o.d"
  "bench_ablation_cell"
  "bench_ablation_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
