# Empty dependencies file for bench_endurance.
# This may be replaced when dependencies are built.
