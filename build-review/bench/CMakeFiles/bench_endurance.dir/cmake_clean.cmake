file(REMOVE_RECURSE
  "CMakeFiles/bench_endurance.dir/bench_endurance.cc.o"
  "CMakeFiles/bench_endurance.dir/bench_endurance.cc.o.d"
  "bench_endurance"
  "bench_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
