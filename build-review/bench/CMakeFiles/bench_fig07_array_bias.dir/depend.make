# Empty dependencies file for bench_fig07_array_bias.
# This may be replaced when dependencies are built.
