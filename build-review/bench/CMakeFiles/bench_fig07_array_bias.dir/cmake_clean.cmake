file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_array_bias.dir/bench_fig07_array_bias.cc.o"
  "CMakeFiles/bench_fig07_array_bias.dir/bench_fig07_array_bias.cc.o.d"
  "bench_fig07_array_bias"
  "bench_fig07_array_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_array_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
