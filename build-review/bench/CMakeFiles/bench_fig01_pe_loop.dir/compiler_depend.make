# Empty compiler generated dependencies file for bench_fig01_pe_loop.
# This may be replaced when dependencies are built.
