file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_pe_loop.dir/bench_fig01_pe_loop.cc.o"
  "CMakeFiles/bench_fig01_pe_loop.dir/bench_fig01_pe_loop.cc.o.d"
  "bench_fig01_pe_loop"
  "bench_fig01_pe_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_pe_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
