# Empty compiler generated dependencies file for bench_sense_margin.
# This may be replaced when dependencies are built.
