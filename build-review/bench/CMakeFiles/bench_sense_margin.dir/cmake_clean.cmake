file(REMOVE_RECURSE
  "CMakeFiles/bench_sense_margin.dir/bench_sense_margin.cc.o"
  "CMakeFiles/bench_sense_margin.dir/bench_sense_margin.cc.o.d"
  "bench_sense_margin"
  "bench_sense_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sense_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
