# Empty compiler generated dependencies file for bench_fig02_fefet_nonvolatile.
# This may be replaced when dependencies are built.
