file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_fefet_nonvolatile.dir/bench_fig02_fefet_nonvolatile.cc.o"
  "CMakeFiles/bench_fig02_fefet_nonvolatile.dir/bench_fig02_fefet_nonvolatile.cc.o.d"
  "bench_fig02_fefet_nonvolatile"
  "bench_fig02_fefet_nonvolatile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_fefet_nonvolatile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
