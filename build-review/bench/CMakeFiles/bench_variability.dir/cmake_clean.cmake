file(REMOVE_RECURSE
  "CMakeFiles/bench_variability.dir/bench_variability.cc.o"
  "CMakeFiles/bench_variability.dir/bench_variability.cc.o.d"
  "bench_variability"
  "bench_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
