# Empty dependencies file for bench_materials.
# This may be replaced when dependencies are built.
