file(REMOVE_RECURSE
  "CMakeFiles/bench_materials.dir/bench_materials.cc.o"
  "CMakeFiles/bench_materials.dir/bench_materials.cc.o.d"
  "bench_materials"
  "bench_materials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
