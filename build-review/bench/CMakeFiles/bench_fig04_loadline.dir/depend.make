# Empty dependencies file for bench_fig04_loadline.
# This may be replaced when dependencies are built.
