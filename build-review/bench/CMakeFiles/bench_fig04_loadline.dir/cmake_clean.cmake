file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_loadline.dir/bench_fig04_loadline.cc.o"
  "CMakeFiles/bench_fig04_loadline.dir/bench_fig04_loadline.cc.o.d"
  "bench_fig04_loadline"
  "bench_fig04_loadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_loadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
