# Empty compiler generated dependencies file for bench_fig06_cell_transient.
# This may be replaced when dependencies are built.
