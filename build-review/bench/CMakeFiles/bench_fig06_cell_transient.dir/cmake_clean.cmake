file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cell_transient.dir/bench_fig06_cell_transient.cc.o"
  "CMakeFiles/bench_fig06_cell_transient.dir/bench_fig06_cell_transient.cc.o.d"
  "bench_fig06_cell_transient"
  "bench_fig06_cell_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cell_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
