# Empty compiler generated dependencies file for bench_tradeoff_study.
# This may be replaced when dependencies are built.
