file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoff_study.dir/bench_tradeoff_study.cc.o"
  "CMakeFiles/bench_tradeoff_study.dir/bench_tradeoff_study.cc.o.d"
  "bench_tradeoff_study"
  "bench_tradeoff_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
