# Empty compiler generated dependencies file for bench_perf_solver.
# This may be replaced when dependencies are built.
