file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_solver.dir/bench_perf_solver.cc.o"
  "CMakeFiles/bench_perf_solver.dir/bench_perf_solver.cc.o.d"
  "bench_perf_solver"
  "bench_perf_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
