file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_iso_write.dir/bench_table3_iso_write.cc.o"
  "CMakeFiles/bench_table3_iso_write.dir/bench_table3_iso_write.cc.o.d"
  "bench_table3_iso_write"
  "bench_table3_iso_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_iso_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
