# Empty dependencies file for bench_table3_iso_write.
# This may be replaced when dependencies are built.
