# Empty dependencies file for bench_fault_resilience.
# This may be replaced when dependencies are built.
