file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_resilience.dir/bench_fault_resilience.cc.o"
  "CMakeFiles/bench_fault_resilience.dir/bench_fault_resilience.cc.o.d"
  "bench_fault_resilience"
  "bench_fault_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
