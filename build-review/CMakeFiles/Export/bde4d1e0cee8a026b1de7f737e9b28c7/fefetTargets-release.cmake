#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "fefet::fefet_common" for configuration "Release"
set_property(TARGET fefet::fefet_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_common.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_common )
list(APPEND _cmake_import_check_files_for_fefet::fefet_common "${_IMPORT_PREFIX}/lib/libfefet_common.a" )

# Import target "fefet::fefet_sim" for configuration "Release"
set_property(TARGET fefet::fefet_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_sim.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_sim )
list(APPEND _cmake_import_check_files_for_fefet::fefet_sim "${_IMPORT_PREFIX}/lib/libfefet_sim.a" )

# Import target "fefet::fefet_ferro" for configuration "Release"
set_property(TARGET fefet::fefet_ferro APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_ferro PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_ferro.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_ferro )
list(APPEND _cmake_import_check_files_for_fefet::fefet_ferro "${_IMPORT_PREFIX}/lib/libfefet_ferro.a" )

# Import target "fefet::fefet_xtor" for configuration "Release"
set_property(TARGET fefet::fefet_xtor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_xtor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_xtor.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_xtor )
list(APPEND _cmake_import_check_files_for_fefet::fefet_xtor "${_IMPORT_PREFIX}/lib/libfefet_xtor.a" )

# Import target "fefet::fefet_spice" for configuration "Release"
set_property(TARGET fefet::fefet_spice APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_spice PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_spice.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_spice )
list(APPEND _cmake_import_check_files_for_fefet::fefet_spice "${_IMPORT_PREFIX}/lib/libfefet_spice.a" )

# Import target "fefet::fefet_core" for configuration "Release"
set_property(TARGET fefet::fefet_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_core.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_core )
list(APPEND _cmake_import_check_files_for_fefet::fefet_core "${_IMPORT_PREFIX}/lib/libfefet_core.a" )

# Import target "fefet::fefet_layout" for configuration "Release"
set_property(TARGET fefet::fefet_layout APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_layout PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_layout.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_layout )
list(APPEND _cmake_import_check_files_for_fefet::fefet_layout "${_IMPORT_PREFIX}/lib/libfefet_layout.a" )

# Import target "fefet::fefet_nvp" for configuration "Release"
set_property(TARGET fefet::fefet_nvp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(fefet::fefet_nvp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfefet_nvp.a"
  )

list(APPEND _cmake_import_check_targets fefet::fefet_nvp )
list(APPEND _cmake_import_check_files_for_fefet::fefet_nvp "${_IMPORT_PREFIX}/lib/libfefet_nvp.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
