file(REMOVE_RECURSE
  "CMakeFiles/test_macro_layout.dir/test_macro_layout.cc.o"
  "CMakeFiles/test_macro_layout.dir/test_macro_layout.cc.o.d"
  "test_macro_layout"
  "test_macro_layout.pdb"
  "test_macro_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macro_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
