# Empty dependencies file for test_macro_layout.
# This may be replaced when dependencies are built.
