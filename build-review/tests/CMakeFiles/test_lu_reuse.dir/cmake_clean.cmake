file(REMOVE_RECURSE
  "CMakeFiles/test_lu_reuse.dir/test_lu_reuse.cc.o"
  "CMakeFiles/test_lu_reuse.dir/test_lu_reuse.cc.o.d"
  "test_lu_reuse"
  "test_lu_reuse.pdb"
  "test_lu_reuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lu_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
