# Empty compiler generated dependencies file for test_lu_reuse.
# This may be replaced when dependencies are built.
