file(REMOVE_RECURSE
  "CMakeFiles/test_nvp_policy.dir/test_nvp_policy.cc.o"
  "CMakeFiles/test_nvp_policy.dir/test_nvp_policy.cc.o.d"
  "test_nvp_policy"
  "test_nvp_policy.pdb"
  "test_nvp_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
