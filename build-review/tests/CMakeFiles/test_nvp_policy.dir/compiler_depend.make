# Empty compiler generated dependencies file for test_nvp_policy.
# This may be replaced when dependencies are built.
