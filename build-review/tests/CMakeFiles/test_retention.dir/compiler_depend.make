# Empty compiler generated dependencies file for test_retention.
# This may be replaced when dependencies are built.
