file(REMOVE_RECURSE
  "CMakeFiles/test_retention.dir/test_retention.cc.o"
  "CMakeFiles/test_retention.dir/test_retention.cc.o.d"
  "test_retention"
  "test_retention.pdb"
  "test_retention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
