file(REMOVE_RECURSE
  "CMakeFiles/test_load_line.dir/test_load_line.cc.o"
  "CMakeFiles/test_load_line.dir/test_load_line.cc.o.d"
  "test_load_line"
  "test_load_line.pdb"
  "test_load_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
