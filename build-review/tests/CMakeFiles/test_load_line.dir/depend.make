# Empty dependencies file for test_load_line.
# This may be replaced when dependencies are built.
