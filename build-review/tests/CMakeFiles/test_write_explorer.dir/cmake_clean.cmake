file(REMOVE_RECURSE
  "CMakeFiles/test_write_explorer.dir/test_write_explorer.cc.o"
  "CMakeFiles/test_write_explorer.dir/test_write_explorer.cc.o.d"
  "test_write_explorer"
  "test_write_explorer.pdb"
  "test_write_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
