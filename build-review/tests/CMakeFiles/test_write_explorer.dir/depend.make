# Empty dependencies file for test_write_explorer.
# This may be replaced when dependencies are built.
