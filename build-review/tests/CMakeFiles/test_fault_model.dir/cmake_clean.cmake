file(REMOVE_RECURSE
  "CMakeFiles/test_fault_model.dir/test_fault_model.cc.o"
  "CMakeFiles/test_fault_model.dir/test_fault_model.cc.o.d"
  "test_fault_model"
  "test_fault_model.pdb"
  "test_fault_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
