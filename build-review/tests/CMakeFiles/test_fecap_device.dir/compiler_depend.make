# Empty compiler generated dependencies file for test_fecap_device.
# This may be replaced when dependencies are built.
