file(REMOVE_RECURSE
  "CMakeFiles/test_fecap_device.dir/test_fecap_device.cc.o"
  "CMakeFiles/test_fecap_device.dir/test_fecap_device.cc.o.d"
  "test_fecap_device"
  "test_fecap_device.pdb"
  "test_fecap_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fecap_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
