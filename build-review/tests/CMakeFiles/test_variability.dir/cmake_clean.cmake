file(REMOVE_RECURSE
  "CMakeFiles/test_variability.dir/test_variability.cc.o"
  "CMakeFiles/test_variability.dir/test_variability.cc.o.d"
  "test_variability"
  "test_variability.pdb"
  "test_variability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
