# Empty dependencies file for test_variability.
# This may be replaced when dependencies are built.
