file(REMOVE_RECURSE
  "CMakeFiles/test_cell2t.dir/test_cell2t.cc.o"
  "CMakeFiles/test_cell2t.dir/test_cell2t.cc.o.d"
  "test_cell2t"
  "test_cell2t.pdb"
  "test_cell2t[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell2t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
