# Empty compiler generated dependencies file for test_cell2t.
# This may be replaced when dependencies are built.
