file(REMOVE_RECURSE
  "CMakeFiles/test_deck_parser.dir/test_deck_parser.cc.o"
  "CMakeFiles/test_deck_parser.dir/test_deck_parser.cc.o.d"
  "test_deck_parser"
  "test_deck_parser.pdb"
  "test_deck_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deck_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
