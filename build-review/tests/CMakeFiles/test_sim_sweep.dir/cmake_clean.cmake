file(REMOVE_RECURSE
  "CMakeFiles/test_sim_sweep.dir/test_sim_sweep.cc.o"
  "CMakeFiles/test_sim_sweep.dir/test_sim_sweep.cc.o.d"
  "test_sim_sweep"
  "test_sim_sweep.pdb"
  "test_sim_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
