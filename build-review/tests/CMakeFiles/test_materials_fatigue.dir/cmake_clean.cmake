file(REMOVE_RECURSE
  "CMakeFiles/test_materials_fatigue.dir/test_materials_fatigue.cc.o"
  "CMakeFiles/test_materials_fatigue.dir/test_materials_fatigue.cc.o.d"
  "test_materials_fatigue"
  "test_materials_fatigue.pdb"
  "test_materials_fatigue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_materials_fatigue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
