# Empty compiler generated dependencies file for test_materials_fatigue.
# This may be replaced when dependencies are built.
