# Empty dependencies file for test_spice_extras.
# This may be replaced when dependencies are built.
