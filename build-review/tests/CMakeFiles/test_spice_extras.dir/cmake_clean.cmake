file(REMOVE_RECURSE
  "CMakeFiles/test_spice_extras.dir/test_spice_extras.cc.o"
  "CMakeFiles/test_spice_extras.dir/test_spice_extras.cc.o.d"
  "test_spice_extras"
  "test_spice_extras.pdb"
  "test_spice_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
