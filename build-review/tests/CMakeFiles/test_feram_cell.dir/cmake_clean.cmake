file(REMOVE_RECURSE
  "CMakeFiles/test_feram_cell.dir/test_feram_cell.cc.o"
  "CMakeFiles/test_feram_cell.dir/test_feram_cell.cc.o.d"
  "test_feram_cell"
  "test_feram_cell.pdb"
  "test_feram_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feram_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
