# Empty dependencies file for test_fefet_device.
# This may be replaced when dependencies are built.
