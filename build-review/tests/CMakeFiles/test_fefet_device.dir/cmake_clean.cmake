file(REMOVE_RECURSE
  "CMakeFiles/test_fefet_device.dir/test_fefet_device.cc.o"
  "CMakeFiles/test_fefet_device.dir/test_fefet_device.cc.o.d"
  "test_fefet_device"
  "test_fefet_device.pdb"
  "test_fefet_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fefet_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
