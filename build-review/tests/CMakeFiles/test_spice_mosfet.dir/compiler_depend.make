# Empty compiler generated dependencies file for test_spice_mosfet.
# This may be replaced when dependencies are built.
