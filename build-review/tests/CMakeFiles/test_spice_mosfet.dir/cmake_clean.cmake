file(REMOVE_RECURSE
  "CMakeFiles/test_spice_mosfet.dir/test_spice_mosfet.cc.o"
  "CMakeFiles/test_spice_mosfet.dir/test_spice_mosfet.cc.o.d"
  "test_spice_mosfet"
  "test_spice_mosfet.pdb"
  "test_spice_mosfet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_mosfet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
