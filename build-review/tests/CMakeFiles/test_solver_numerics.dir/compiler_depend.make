# Empty compiler generated dependencies file for test_solver_numerics.
# This may be replaced when dependencies are built.
