file(REMOVE_RECURSE
  "CMakeFiles/test_solver_numerics.dir/test_solver_numerics.cc.o"
  "CMakeFiles/test_solver_numerics.dir/test_solver_numerics.cc.o.d"
  "test_solver_numerics"
  "test_solver_numerics.pdb"
  "test_solver_numerics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
