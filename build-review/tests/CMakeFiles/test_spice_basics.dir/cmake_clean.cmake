file(REMOVE_RECURSE
  "CMakeFiles/test_spice_basics.dir/test_spice_basics.cc.o"
  "CMakeFiles/test_spice_basics.dir/test_spice_basics.cc.o.d"
  "test_spice_basics"
  "test_spice_basics.pdb"
  "test_spice_basics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_basics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
