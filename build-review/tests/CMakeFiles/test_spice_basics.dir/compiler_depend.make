# Empty compiler generated dependencies file for test_spice_basics.
# This may be replaced when dependencies are built.
