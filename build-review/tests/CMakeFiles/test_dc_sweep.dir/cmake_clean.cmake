file(REMOVE_RECURSE
  "CMakeFiles/test_dc_sweep.dir/test_dc_sweep.cc.o"
  "CMakeFiles/test_dc_sweep.dir/test_dc_sweep.cc.o.d"
  "test_dc_sweep"
  "test_dc_sweep.pdb"
  "test_dc_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
