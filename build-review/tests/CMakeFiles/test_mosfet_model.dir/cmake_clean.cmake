file(REMOVE_RECURSE
  "CMakeFiles/test_mosfet_model.dir/test_mosfet_model.cc.o"
  "CMakeFiles/test_mosfet_model.dir/test_mosfet_model.cc.o.d"
  "test_mosfet_model"
  "test_mosfet_model.pdb"
  "test_mosfet_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mosfet_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
