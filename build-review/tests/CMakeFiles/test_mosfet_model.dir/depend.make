# Empty dependencies file for test_mosfet_model.
# This may be replaced when dependencies are built.
