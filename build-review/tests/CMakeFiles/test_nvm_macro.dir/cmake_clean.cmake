file(REMOVE_RECURSE
  "CMakeFiles/test_nvm_macro.dir/test_nvm_macro.cc.o"
  "CMakeFiles/test_nvm_macro.dir/test_nvm_macro.cc.o.d"
  "test_nvm_macro"
  "test_nvm_macro.pdb"
  "test_nvm_macro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvm_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
