# Empty dependencies file for test_nvm_macro.
# This may be replaced when dependencies are built.
