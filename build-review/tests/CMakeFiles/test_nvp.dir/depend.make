# Empty dependencies file for test_nvp.
# This may be replaced when dependencies are built.
