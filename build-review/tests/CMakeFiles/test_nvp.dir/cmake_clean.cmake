file(REMOVE_RECURSE
  "CMakeFiles/test_nvp.dir/test_nvp.cc.o"
  "CMakeFiles/test_nvp.dir/test_nvp.cc.o.d"
  "test_nvp"
  "test_nvp.pdb"
  "test_nvp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
