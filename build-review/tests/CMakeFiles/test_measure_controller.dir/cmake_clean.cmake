file(REMOVE_RECURSE
  "CMakeFiles/test_measure_controller.dir/test_measure_controller.cc.o"
  "CMakeFiles/test_measure_controller.dir/test_measure_controller.cc.o.d"
  "test_measure_controller"
  "test_measure_controller.pdb"
  "test_measure_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
