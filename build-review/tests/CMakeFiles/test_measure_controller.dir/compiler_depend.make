# Empty compiler generated dependencies file for test_measure_controller.
# This may be replaced when dependencies are built.
