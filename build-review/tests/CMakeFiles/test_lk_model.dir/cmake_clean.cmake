file(REMOVE_RECURSE
  "CMakeFiles/test_lk_model.dir/test_lk_model.cc.o"
  "CMakeFiles/test_lk_model.dir/test_lk_model.cc.o.d"
  "test_lk_model"
  "test_lk_model.pdb"
  "test_lk_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
