# Empty compiler generated dependencies file for test_lk_model.
# This may be replaced when dependencies are built.
