# Empty compiler generated dependencies file for test_feram_array_thermal.
# This may be replaced when dependencies are built.
