file(REMOVE_RECURSE
  "CMakeFiles/test_feram_array_thermal.dir/test_feram_array_thermal.cc.o"
  "CMakeFiles/test_feram_array_thermal.dir/test_feram_array_thermal.cc.o.d"
  "test_feram_array_thermal"
  "test_feram_array_thermal.pdb"
  "test_feram_array_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feram_array_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
