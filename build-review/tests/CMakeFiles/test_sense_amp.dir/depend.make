# Empty dependencies file for test_sense_amp.
# This may be replaced when dependencies are built.
