file(REMOVE_RECURSE
  "CMakeFiles/test_sense_amp.dir/test_sense_amp.cc.o"
  "CMakeFiles/test_sense_amp.dir/test_sense_amp.cc.o.d"
  "test_sense_amp"
  "test_sense_amp.pdb"
  "test_sense_amp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sense_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
