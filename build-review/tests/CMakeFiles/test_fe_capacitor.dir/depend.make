# Empty dependencies file for test_fe_capacitor.
# This may be replaced when dependencies are built.
