file(REMOVE_RECURSE
  "CMakeFiles/test_fe_capacitor.dir/test_fe_capacitor.cc.o"
  "CMakeFiles/test_fe_capacitor.dir/test_fe_capacitor.cc.o.d"
  "test_fe_capacitor"
  "test_fe_capacitor.pdb"
  "test_fe_capacitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe_capacitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
