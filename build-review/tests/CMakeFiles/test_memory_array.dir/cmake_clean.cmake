file(REMOVE_RECURSE
  "CMakeFiles/test_memory_array.dir/test_memory_array.cc.o"
  "CMakeFiles/test_memory_array.dir/test_memory_array.cc.o.d"
  "test_memory_array"
  "test_memory_array.pdb"
  "test_memory_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
