# Empty dependencies file for test_memory_array.
# This may be replaced when dependencies are built.
