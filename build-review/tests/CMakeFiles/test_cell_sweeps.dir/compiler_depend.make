# Empty compiler generated dependencies file for test_cell_sweeps.
# This may be replaced when dependencies are built.
