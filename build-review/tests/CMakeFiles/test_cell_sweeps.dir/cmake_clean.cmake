file(REMOVE_RECURSE
  "CMakeFiles/test_cell_sweeps.dir/test_cell_sweeps.cc.o"
  "CMakeFiles/test_cell_sweeps.dir/test_cell_sweeps.cc.o.d"
  "test_cell_sweeps"
  "test_cell_sweeps.pdb"
  "test_cell_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
