file(REMOVE_RECURSE
  "CMakeFiles/fefet_nvp.dir/checkpoint.cc.o"
  "CMakeFiles/fefet_nvp.dir/checkpoint.cc.o.d"
  "CMakeFiles/fefet_nvp.dir/nv_processor.cc.o"
  "CMakeFiles/fefet_nvp.dir/nv_processor.cc.o.d"
  "CMakeFiles/fefet_nvp.dir/power_trace.cc.o"
  "CMakeFiles/fefet_nvp.dir/power_trace.cc.o.d"
  "CMakeFiles/fefet_nvp.dir/workload.cc.o"
  "CMakeFiles/fefet_nvp.dir/workload.cc.o.d"
  "libfefet_nvp.a"
  "libfefet_nvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
