# Empty dependencies file for fefet_nvp.
# This may be replaced when dependencies are built.
