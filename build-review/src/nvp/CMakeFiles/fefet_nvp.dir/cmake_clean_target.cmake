file(REMOVE_RECURSE
  "libfefet_nvp.a"
)
