
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/dc_sweep.cc" "src/spice/CMakeFiles/fefet_spice.dir/dc_sweep.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/dc_sweep.cc.o.d"
  "/root/repo/src/spice/deck_parser.cc" "src/spice/CMakeFiles/fefet_spice.dir/deck_parser.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/deck_parser.cc.o.d"
  "/root/repo/src/spice/extras.cc" "src/spice/CMakeFiles/fefet_spice.dir/extras.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/extras.cc.o.d"
  "/root/repo/src/spice/fecap_device.cc" "src/spice/CMakeFiles/fefet_spice.dir/fecap_device.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/fecap_device.cc.o.d"
  "/root/repo/src/spice/measure.cc" "src/spice/CMakeFiles/fefet_spice.dir/measure.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/measure.cc.o.d"
  "/root/repo/src/spice/mna.cc" "src/spice/CMakeFiles/fefet_spice.dir/mna.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/mna.cc.o.d"
  "/root/repo/src/spice/mosfet_device.cc" "src/spice/CMakeFiles/fefet_spice.dir/mosfet_device.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/mosfet_device.cc.o.d"
  "/root/repo/src/spice/netlist.cc" "src/spice/CMakeFiles/fefet_spice.dir/netlist.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/netlist.cc.o.d"
  "/root/repo/src/spice/newton.cc" "src/spice/CMakeFiles/fefet_spice.dir/newton.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/newton.cc.o.d"
  "/root/repo/src/spice/passives.cc" "src/spice/CMakeFiles/fefet_spice.dir/passives.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/passives.cc.o.d"
  "/root/repo/src/spice/simulator.cc" "src/spice/CMakeFiles/fefet_spice.dir/simulator.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/simulator.cc.o.d"
  "/root/repo/src/spice/sources.cc" "src/spice/CMakeFiles/fefet_spice.dir/sources.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/sources.cc.o.d"
  "/root/repo/src/spice/waveform.cc" "src/spice/CMakeFiles/fefet_spice.dir/waveform.cc.o" "gcc" "src/spice/CMakeFiles/fefet_spice.dir/waveform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/fefet_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ferro/CMakeFiles/fefet_ferro.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xtor/CMakeFiles/fefet_xtor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
