file(REMOVE_RECURSE
  "CMakeFiles/fefet_spice.dir/dc_sweep.cc.o"
  "CMakeFiles/fefet_spice.dir/dc_sweep.cc.o.d"
  "CMakeFiles/fefet_spice.dir/deck_parser.cc.o"
  "CMakeFiles/fefet_spice.dir/deck_parser.cc.o.d"
  "CMakeFiles/fefet_spice.dir/extras.cc.o"
  "CMakeFiles/fefet_spice.dir/extras.cc.o.d"
  "CMakeFiles/fefet_spice.dir/fecap_device.cc.o"
  "CMakeFiles/fefet_spice.dir/fecap_device.cc.o.d"
  "CMakeFiles/fefet_spice.dir/measure.cc.o"
  "CMakeFiles/fefet_spice.dir/measure.cc.o.d"
  "CMakeFiles/fefet_spice.dir/mna.cc.o"
  "CMakeFiles/fefet_spice.dir/mna.cc.o.d"
  "CMakeFiles/fefet_spice.dir/mosfet_device.cc.o"
  "CMakeFiles/fefet_spice.dir/mosfet_device.cc.o.d"
  "CMakeFiles/fefet_spice.dir/netlist.cc.o"
  "CMakeFiles/fefet_spice.dir/netlist.cc.o.d"
  "CMakeFiles/fefet_spice.dir/newton.cc.o"
  "CMakeFiles/fefet_spice.dir/newton.cc.o.d"
  "CMakeFiles/fefet_spice.dir/passives.cc.o"
  "CMakeFiles/fefet_spice.dir/passives.cc.o.d"
  "CMakeFiles/fefet_spice.dir/simulator.cc.o"
  "CMakeFiles/fefet_spice.dir/simulator.cc.o.d"
  "CMakeFiles/fefet_spice.dir/sources.cc.o"
  "CMakeFiles/fefet_spice.dir/sources.cc.o.d"
  "CMakeFiles/fefet_spice.dir/waveform.cc.o"
  "CMakeFiles/fefet_spice.dir/waveform.cc.o.d"
  "libfefet_spice.a"
  "libfefet_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
