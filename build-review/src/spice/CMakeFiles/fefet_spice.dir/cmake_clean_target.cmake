file(REMOVE_RECURSE
  "libfefet_spice.a"
)
