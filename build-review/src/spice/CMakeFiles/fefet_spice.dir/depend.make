# Empty dependencies file for fefet_spice.
# This may be replaced when dependencies are built.
