
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bias_scheme.cc" "src/core/CMakeFiles/fefet_core.dir/bias_scheme.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/bias_scheme.cc.o.d"
  "/root/repo/src/core/cell2t.cc" "src/core/CMakeFiles/fefet_core.dir/cell2t.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/cell2t.cc.o.d"
  "/root/repo/src/core/design_space.cc" "src/core/CMakeFiles/fefet_core.dir/design_space.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/design_space.cc.o.d"
  "/root/repo/src/core/ecc.cc" "src/core/CMakeFiles/fefet_core.dir/ecc.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/ecc.cc.o.d"
  "/root/repo/src/core/fault_model.cc" "src/core/CMakeFiles/fefet_core.dir/fault_model.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/fault_model.cc.o.d"
  "/root/repo/src/core/fefet.cc" "src/core/CMakeFiles/fefet_core.dir/fefet.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/fefet.cc.o.d"
  "/root/repo/src/core/feram_array.cc" "src/core/CMakeFiles/fefet_core.dir/feram_array.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/feram_array.cc.o.d"
  "/root/repo/src/core/feram_cell.cc" "src/core/CMakeFiles/fefet_core.dir/feram_cell.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/feram_cell.cc.o.d"
  "/root/repo/src/core/macro_energy.cc" "src/core/CMakeFiles/fefet_core.dir/macro_energy.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/macro_energy.cc.o.d"
  "/root/repo/src/core/materials.cc" "src/core/CMakeFiles/fefet_core.dir/materials.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/materials.cc.o.d"
  "/root/repo/src/core/memory_array.cc" "src/core/CMakeFiles/fefet_core.dir/memory_array.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/memory_array.cc.o.d"
  "/root/repo/src/core/memory_controller.cc" "src/core/CMakeFiles/fefet_core.dir/memory_controller.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/memory_controller.cc.o.d"
  "/root/repo/src/core/nvm_macro.cc" "src/core/CMakeFiles/fefet_core.dir/nvm_macro.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/nvm_macro.cc.o.d"
  "/root/repo/src/core/resilience.cc" "src/core/CMakeFiles/fefet_core.dir/resilience.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/resilience.cc.o.d"
  "/root/repo/src/core/sense_amp.cc" "src/core/CMakeFiles/fefet_core.dir/sense_amp.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/sense_amp.cc.o.d"
  "/root/repo/src/core/stress.cc" "src/core/CMakeFiles/fefet_core.dir/stress.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/stress.cc.o.d"
  "/root/repo/src/core/variability.cc" "src/core/CMakeFiles/fefet_core.dir/variability.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/variability.cc.o.d"
  "/root/repo/src/core/write_explorer.cc" "src/core/CMakeFiles/fefet_core.dir/write_explorer.cc.o" "gcc" "src/core/CMakeFiles/fefet_core.dir/write_explorer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/fefet_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fefet_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ferro/CMakeFiles/fefet_ferro.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xtor/CMakeFiles/fefet_xtor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spice/CMakeFiles/fefet_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/layout/CMakeFiles/fefet_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
