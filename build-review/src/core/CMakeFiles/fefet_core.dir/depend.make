# Empty dependencies file for fefet_core.
# This may be replaced when dependencies are built.
