file(REMOVE_RECURSE
  "libfefet_core.a"
)
