file(REMOVE_RECURSE
  "libfefet_layout.a"
)
