file(REMOVE_RECURSE
  "CMakeFiles/fefet_layout.dir/layout.cc.o"
  "CMakeFiles/fefet_layout.dir/layout.cc.o.d"
  "libfefet_layout.a"
  "libfefet_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
