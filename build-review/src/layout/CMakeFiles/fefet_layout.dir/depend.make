# Empty dependencies file for fefet_layout.
# This may be replaced when dependencies are built.
