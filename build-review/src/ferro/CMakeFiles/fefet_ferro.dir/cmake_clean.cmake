file(REMOVE_RECURSE
  "CMakeFiles/fefet_ferro.dir/calibrate.cc.o"
  "CMakeFiles/fefet_ferro.dir/calibrate.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/fatigue.cc.o"
  "CMakeFiles/fefet_ferro.dir/fatigue.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/fe_capacitor.cc.o"
  "CMakeFiles/fefet_ferro.dir/fe_capacitor.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/lk_model.cc.o"
  "CMakeFiles/fefet_ferro.dir/lk_model.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/load_line.cc.o"
  "CMakeFiles/fefet_ferro.dir/load_line.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/material_db.cc.o"
  "CMakeFiles/fefet_ferro.dir/material_db.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/pe_loop.cc.o"
  "CMakeFiles/fefet_ferro.dir/pe_loop.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/retention.cc.o"
  "CMakeFiles/fefet_ferro.dir/retention.cc.o.d"
  "CMakeFiles/fefet_ferro.dir/thermal.cc.o"
  "CMakeFiles/fefet_ferro.dir/thermal.cc.o.d"
  "libfefet_ferro.a"
  "libfefet_ferro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_ferro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
