
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ferro/calibrate.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/calibrate.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/calibrate.cc.o.d"
  "/root/repo/src/ferro/fatigue.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/fatigue.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/fatigue.cc.o.d"
  "/root/repo/src/ferro/fe_capacitor.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/fe_capacitor.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/fe_capacitor.cc.o.d"
  "/root/repo/src/ferro/lk_model.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/lk_model.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/lk_model.cc.o.d"
  "/root/repo/src/ferro/load_line.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/load_line.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/load_line.cc.o.d"
  "/root/repo/src/ferro/material_db.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/material_db.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/material_db.cc.o.d"
  "/root/repo/src/ferro/pe_loop.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/pe_loop.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/pe_loop.cc.o.d"
  "/root/repo/src/ferro/retention.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/retention.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/retention.cc.o.d"
  "/root/repo/src/ferro/thermal.cc" "src/ferro/CMakeFiles/fefet_ferro.dir/thermal.cc.o" "gcc" "src/ferro/CMakeFiles/fefet_ferro.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/fefet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
