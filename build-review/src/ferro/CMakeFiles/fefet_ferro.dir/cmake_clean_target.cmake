file(REMOVE_RECURSE
  "libfefet_ferro.a"
)
