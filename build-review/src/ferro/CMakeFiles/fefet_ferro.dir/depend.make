# Empty dependencies file for fefet_ferro.
# This may be replaced when dependencies are built.
