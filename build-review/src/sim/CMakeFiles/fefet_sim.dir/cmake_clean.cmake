file(REMOVE_RECURSE
  "CMakeFiles/fefet_sim.dir/sweep_engine.cc.o"
  "CMakeFiles/fefet_sim.dir/sweep_engine.cc.o.d"
  "CMakeFiles/fefet_sim.dir/thread_pool.cc.o"
  "CMakeFiles/fefet_sim.dir/thread_pool.cc.o.d"
  "libfefet_sim.a"
  "libfefet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
