
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sweep_engine.cc" "src/sim/CMakeFiles/fefet_sim.dir/sweep_engine.cc.o" "gcc" "src/sim/CMakeFiles/fefet_sim.dir/sweep_engine.cc.o.d"
  "/root/repo/src/sim/thread_pool.cc" "src/sim/CMakeFiles/fefet_sim.dir/thread_pool.cc.o" "gcc" "src/sim/CMakeFiles/fefet_sim.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/fefet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
