file(REMOVE_RECURSE
  "libfefet_sim.a"
)
