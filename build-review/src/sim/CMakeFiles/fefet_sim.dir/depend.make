# Empty dependencies file for fefet_sim.
# This may be replaced when dependencies are built.
