
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/error.cc" "src/common/CMakeFiles/fefet_common.dir/error.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/error.cc.o.d"
  "/root/repo/src/common/linalg.cc" "src/common/CMakeFiles/fefet_common.dir/linalg.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/linalg.cc.o.d"
  "/root/repo/src/common/log.cc" "src/common/CMakeFiles/fefet_common.dir/log.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/log.cc.o.d"
  "/root/repo/src/common/math.cc" "src/common/CMakeFiles/fefet_common.dir/math.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/math.cc.o.d"
  "/root/repo/src/common/plot.cc" "src/common/CMakeFiles/fefet_common.dir/plot.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/plot.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/fefet_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/stats.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/fefet_common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/strings.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/fefet_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/fefet_common.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
