file(REMOVE_RECURSE
  "libfefet_common.a"
)
