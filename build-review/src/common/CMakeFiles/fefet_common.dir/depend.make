# Empty dependencies file for fefet_common.
# This may be replaced when dependencies are built.
