file(REMOVE_RECURSE
  "CMakeFiles/fefet_common.dir/error.cc.o"
  "CMakeFiles/fefet_common.dir/error.cc.o.d"
  "CMakeFiles/fefet_common.dir/linalg.cc.o"
  "CMakeFiles/fefet_common.dir/linalg.cc.o.d"
  "CMakeFiles/fefet_common.dir/log.cc.o"
  "CMakeFiles/fefet_common.dir/log.cc.o.d"
  "CMakeFiles/fefet_common.dir/math.cc.o"
  "CMakeFiles/fefet_common.dir/math.cc.o.d"
  "CMakeFiles/fefet_common.dir/plot.cc.o"
  "CMakeFiles/fefet_common.dir/plot.cc.o.d"
  "CMakeFiles/fefet_common.dir/stats.cc.o"
  "CMakeFiles/fefet_common.dir/stats.cc.o.d"
  "CMakeFiles/fefet_common.dir/strings.cc.o"
  "CMakeFiles/fefet_common.dir/strings.cc.o.d"
  "CMakeFiles/fefet_common.dir/table.cc.o"
  "CMakeFiles/fefet_common.dir/table.cc.o.d"
  "libfefet_common.a"
  "libfefet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
