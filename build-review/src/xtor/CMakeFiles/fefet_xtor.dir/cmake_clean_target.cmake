file(REMOVE_RECURSE
  "libfefet_xtor.a"
)
