file(REMOVE_RECURSE
  "CMakeFiles/fefet_xtor.dir/mosfet_model.cc.o"
  "CMakeFiles/fefet_xtor.dir/mosfet_model.cc.o.d"
  "CMakeFiles/fefet_xtor.dir/technology.cc.o"
  "CMakeFiles/fefet_xtor.dir/technology.cc.o.d"
  "libfefet_xtor.a"
  "libfefet_xtor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fefet_xtor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
