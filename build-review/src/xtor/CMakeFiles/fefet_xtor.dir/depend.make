# Empty dependencies file for fefet_xtor.
# This may be replaced when dependencies are built.
