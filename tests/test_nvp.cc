// Tests of the NVP substrate (paper §7, Figs. 12-13): power traces,
// workloads and the ODAB forward-progress model.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/nvm_macro.h"
#include "nvp/checkpoint.h"
#include "nvp/nv_processor.h"
#include "nvp/power_trace.h"
#include "nvp/workload.h"

namespace fefet::nvp {
namespace {

TEST(PowerTrace, SegmentsAndMetrics) {
  PowerTrace t;
  t.addSegment(1.0, 10e-6);
  t.addSegment(1.0, 0.0);
  EXPECT_DOUBLE_EQ(t.totalDuration(), 2.0);
  EXPECT_DOUBLE_EQ(t.meanPower(), 5e-6);
  EXPECT_DOUBLE_EQ(t.dutyCycle(), 0.5);
  EXPECT_DOUBLE_EQ(t.interruptionRate(), 0.5);
}

TEST(PowerTrace, ScaleToMeanPower) {
  PowerTrace t;
  t.addSegment(1.0, 10e-6);
  t.addSegment(3.0, 0.0);
  t.scaleToMeanPower(20e-6);
  EXPECT_NEAR(t.meanPower(), 20e-6, 1e-12);
}

TEST(PowerTrace, WifiTraceHasRequestedStatistics) {
  WifiTraceParams params;
  params.meanPower = 12e-6;
  params.duration = 0.5;
  const auto trace = makeWifiTrace(params);
  EXPECT_NEAR(trace.meanPower(), 12e-6, 1e-10);
  EXPECT_NEAR(trace.totalDuration(), 0.5, 1e-6);
  EXPECT_GT(trace.interruptionRate(), 100.0);
  EXPECT_GT(trace.dutyCycle(), 0.1);
  EXPECT_LT(trace.dutyCycle(), 0.9);
}

TEST(PowerTrace, DeterministicPerSeed) {
  WifiTraceParams params;
  const auto a = makeWifiTrace(params);
  const auto b = makeWifiTrace(params);
  params.seed = 99;
  const auto c = makeWifiTrace(params);
  ASSERT_EQ(a.segmentCount(), b.segmentCount());
  EXPECT_DOUBLE_EQ(a.segmentPower(3), b.segmentPower(3));
  EXPECT_NE(a.segmentCount(), c.segmentCount());
}

TEST(PowerTrace, StandardSetOrderedByPower) {
  const auto set = standardTraceSet();
  ASSERT_EQ(set.size(), 5u);
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_GT(set[i].trace.meanPower(), set[i - 1].trace.meanPower());
  }
  // Lower power = more frequently interrupted (per-second outages scale
  // with shorter bursts/longer outages at similar rate, so check duty).
  EXPECT_LT(set.front().trace.dutyCycle(), set.back().trace.dutyCycle());
}

TEST(Workloads, SuiteHasEightMiBenchProfiles) {
  const auto suite = mibenchSuite();
  ASSERT_EQ(suite.size(), 8u);
  for (const auto& w : suite) {
    EXPECT_GT(w.activePower, 0.0);
    EXPECT_GT(w.backupWords, 0);
  }
  EXPECT_EQ(suite.front().name, "bitcount");
}

TEST(NvmParams, Table3Values) {
  const auto fefet = fefetNvm();
  const auto feram = feramNvm();
  EXPECT_NEAR(fefet.writeEnergyPerWord * 32.0, 4.82e-12, 1e-15);
  EXPECT_NEAR(fefet.readEnergyPerWord * 32.0, 0.28e-12, 1e-15);
  EXPECT_NEAR(feram.writeEnergyPerWord * 32.0, 15.0e-12, 1e-15);
  EXPECT_NEAR(feram.readEnergyPerWord * 32.0, 15.5e-12, 1e-15);
}

TEST(NvProcessor, ForwardProgressBounds) {
  const auto trace = standardTraceSet()[2].trace;
  const auto w = mibenchSuite()[0];
  const auto r = simulateNvp(trace, w, fefetNvm());
  EXPECT_GE(r.forwardProgress, 0.0);
  EXPECT_LE(r.forwardProgress, 1.0);
  EXPECT_GT(r.powerCycles, 0);
  EXPECT_GT(r.backupEnergy, 0.0);
  EXPECT_GT(r.restoreEnergy, 0.0);
}

TEST(NvProcessor, NoPowerNoProgress) {
  PowerTrace dead;
  dead.addSegment(0.1, 0.0);
  const auto r = simulateNvp(dead, mibenchSuite()[0], fefetNvm());
  EXPECT_DOUBLE_EQ(r.forwardProgress, 0.0);
}

TEST(NvProcessor, AbundantPowerNearFullProgress) {
  PowerTrace rich;
  rich.addSegment(0.2, 500e-6);
  const auto r = simulateNvp(rich, mibenchSuite()[0], fefetNvm());
  EXPECT_GT(r.forwardProgress, 0.95);
}

TEST(NvProcessor, FefetBeatsFeramOnEveryWorkload) {
  const auto trace = standardTraceSet()[2].trace;  // the paper point
  for (const auto& w : mibenchSuite()) {
    const double gain = forwardProgressGain(trace, w, fefetNvm(), feramNvm());
    EXPECT_GT(gain, 0.0) << w.name;
  }
}

TEST(NvProcessor, PaperPointGainsInTwentyToFortyPercentBand) {
  // Paper Fig. 13: 22-38% more forward progress, average 27%.
  const auto trace = standardTraceSet()[2].trace;
  double sum = 0.0;
  for (const auto& w : mibenchSuite()) {
    const double gain = forwardProgressGain(trace, w, fefetNvm(), feramNvm());
    EXPECT_GT(gain, 0.15) << w.name;
    EXPECT_LT(gain, 0.45) << w.name;
    sum += gain;
  }
  EXPECT_NEAR(sum / 8.0, 0.27, 0.06);
}

TEST(NvProcessor, GainsGrowAsPowerShrinks) {
  // Paper: "gains are the largest for the lowest power and most
  // frequently interrupted power traces".
  const auto set = standardTraceSet();
  const auto w = mibenchSuite()[3];  // fft
  double prev = 1e9;
  for (const auto& nt : set) {
    const double gain = forwardProgressGain(nt.trace, w, fefetNvm(),
                                            feramNvm());
    EXPECT_LT(gain, prev) << nt.name;
    prev = gain;
  }
}

TEST(NvProcessor, BackupEnergyRatioTracksNvmParams) {
  const auto trace = standardTraceSet()[2].trace;
  const auto w = mibenchSuite()[0];
  const auto fef = simulateNvp(trace, w, fefetNvm());
  const auto fer = simulateNvp(trace, w, feramNvm());
  // Per-cycle backup energy ratio = write-energy ratio (~3.1x).
  const double perCycleFef = fef.backupEnergy / fef.powerCycles;
  const double perCycleFer = fer.backupEnergy / fer.powerCycles;
  EXPECT_NEAR(perCycleFer / perCycleFef, 15.0 / 4.82, 0.4);
}

// Property: forward progress is monotone in mean power for both NVMs.
class FpVsPower : public ::testing::TestWithParam<int> {};

TEST_P(FpVsPower, MonotoneInMeanPower) {
  const auto set = standardTraceSet();
  const auto w = mibenchSuite()[static_cast<std::size_t>(GetParam())];
  double prevFef = -1.0, prevFer = -1.0;
  for (const auto& nt : set) {
    const double fef = simulateNvp(nt.trace, w, fefetNvm()).forwardProgress;
    const double fer = simulateNvp(nt.trace, w, feramNvm()).forwardProgress;
    EXPECT_GT(fef, prevFef) << nt.name;
    EXPECT_GT(fer, prevFer) << nt.name;
    prevFef = fef;
    prevFer = fer;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, FpVsPower, ::testing::Values(0, 3, 7));

// --- crash-consistent checkpointing on the NVM macro ---------------------

core::NvmMacro checkpointMacro() {
  core::MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  return core::NvmMacro(core::MacroTechnology::kFefet, cfg);
}

std::vector<std::uint32_t> sampleState(int words, std::uint32_t salt) {
  std::vector<std::uint32_t> s;
  for (int i = 0; i < words; ++i) {
    s.push_back(0x85EBCA6Bu * (static_cast<std::uint32_t>(i) + salt + 1));
  }
  return s;
}

TEST(Checkpoint, FirstBootHasNothingToRestore) {
  auto macro = checkpointMacro();
  CheckpointManager mgr(macro, 16);
  EXPECT_EQ(mgr.epoch(), 0u);
  EXPECT_FALSE(mgr.restore().has_value());
}

TEST(Checkpoint, BackupRestoreRoundTrip) {
  auto macro = checkpointMacro();
  CheckpointManager mgr(macro, 16);
  const auto state = sampleState(16, 7);
  const auto r = mgr.backup(state);
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.wordsWritten, 18);  // state + checksum + epoch
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.latency, 0.0);
  EXPECT_EQ(mgr.epoch(), 1u);
  const auto back = mgr.restore();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, state);
}

TEST(Checkpoint, PowerFailureAtEveryTruncationPointLosesOnlyTheNewest) {
  // Commit state A, then inject a power failure at every possible word
  // boundary of the backup of state B: restore must always return A
  // intact — the torn B image must never win.
  auto macro = checkpointMacro();
  CheckpointManager mgr(macro, 8);
  const auto stateA = sampleState(8, 1);
  ASSERT_TRUE(mgr.backup(stateA).committed);
  for (int failAt = 0; failAt <= 9; ++failAt) {
    const auto stateB = sampleState(8, 100 + failAt);
    const auto r = mgr.backup(stateB, failAt);
    EXPECT_FALSE(r.committed) << failAt;
    EXPECT_EQ(r.wordsWritten, failAt);
    const auto back = mgr.restore();
    ASSERT_TRUE(back.has_value()) << failAt;
    EXPECT_EQ(*back, stateA) << "torn backup leaked at word " << failAt;
  }
  // The epoch word is last: only the full 10-word stream commits.
  const auto stateC = sampleState(8, 999);
  EXPECT_TRUE(mgr.backup(stateC, 10).committed);
  EXPECT_EQ(*mgr.restore(), stateC);
}

TEST(Checkpoint, AlternatesBanksAndSurvivesManyCycles) {
  auto macro = checkpointMacro();
  CheckpointManager mgr(macro, 4);
  for (std::uint32_t k = 1; k <= 10; ++k) {
    const auto state = sampleState(4, k);
    ASSERT_TRUE(mgr.backup(state).committed);
    EXPECT_EQ(mgr.epoch(), k);
    EXPECT_EQ(*mgr.restore(), state);
  }
}

TEST(Checkpoint, RebuiltManagerResumesFromTheMacroContents) {
  // A new manager over the same macro (a reboot) must find the committed
  // checkpoint and continue the epoch sequence.
  auto macro = checkpointMacro();
  const auto state = sampleState(6, 3);
  {
    CheckpointManager mgr(macro, 6);
    ASSERT_TRUE(mgr.backup(state).committed);
    ASSERT_TRUE(mgr.backup(sampleState(6, 4), 2).committed == false);
  }
  CheckpointManager reborn(macro, 6);
  EXPECT_EQ(reborn.epoch(), 1u);
  const auto back = reborn.restore();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, state);
  EXPECT_TRUE(reborn.backup(sampleState(6, 5)).committed);
  EXPECT_EQ(reborn.epoch(), 2u);
}

TEST(Checkpoint, WorksOnAFaultyResilientMacro) {
  // Checkpoints over a macro with injected faults: the resilient word
  // path underneath must keep every round trip intact.
  core::MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  core::MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtZeroRate = 5e-4;
  res.faults.writeFailureProbability = 0.05;
  res.faults.seed = 12;
  res.retry.maxRetries = 3;
  res.eccEnabled = true;
  res.spareWords = 8;
  core::NvmMacro macro(core::MacroTechnology::kFefet, cfg, res);
  CheckpointManager mgr(macro, 16);
  for (std::uint32_t k = 1; k <= 5; ++k) {
    const auto state = sampleState(16, 40 + k);
    ASSERT_TRUE(mgr.backup(state).committed);
    EXPECT_EQ(*mgr.restore(), state) << "cycle " << k;
  }
  EXPECT_TRUE(macro.report().clean()) << macro.report().summary();
}

TEST(Checkpoint, RejectsBadGeometry) {
  auto macro = checkpointMacro();
  EXPECT_THROW(CheckpointManager(macro, 0), InvalidArgumentError);
  EXPECT_THROW(CheckpointManager(macro, 10000), InvalidArgumentError);
  CheckpointManager mgr(macro, 4);
  EXPECT_THROW(mgr.backup(sampleState(5, 1)), InvalidArgumentError);
}

// --- file-backed double-bank store ---------------------------------------

class FileCheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "file_ckpt_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(FileCheckpointStoreTest, FirstBootHasNothingToRestore) {
  FileCheckpointStore store(dir_, 8);
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_FALSE(store.restore().has_value());
}

TEST_F(FileCheckpointStoreTest, SaveRestoreRoundTripAndAlternatingBanks) {
  FileCheckpointStore store(dir_, 8);
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const auto state = sampleState(8, 50 + k);
    ASSERT_TRUE(store.save(state));
    EXPECT_EQ(store.epoch(), k);
    EXPECT_EQ(*store.restore(), state);
  }
  // Both bank files exist (the store alternates) and carry data.
  EXPECT_GT(std::filesystem::file_size(store.bankPath(0)), 0u);
  EXPECT_GT(std::filesystem::file_size(store.bankPath(1)), 0u);
}

TEST_F(FileCheckpointStoreTest, TornNewestBankFallsBackToPrevious) {
  const auto older = sampleState(8, 1);
  std::string newestPath;
  {
    FileCheckpointStore store(dir_, 8);
    ASSERT_TRUE(store.save(older));
    ASSERT_TRUE(store.save(sampleState(8, 2)));
    // Epoch 2 landed in bank 1 (the first save used bank 0).
    newestPath = store.bankPath(1);
  }
  // Tear the newest bank at every truncation length: restore must always
  // return the older committed image, never a torn one.
  const auto full = std::filesystem::file_size(newestPath);
  for (std::uintmax_t keep = 0; keep < full; keep += 7) {
    std::filesystem::resize_file(newestPath, keep);
    FileCheckpointStore reborn(dir_, 8);
    ASSERT_TRUE(reborn.restore().has_value()) << keep;
    EXPECT_EQ(*reborn.restore(), older) << keep;
    EXPECT_EQ(reborn.epoch(), 1u) << keep;
  }
}

TEST_F(FileCheckpointStoreTest, RebuiltStoreResumesTheEpochSequence) {
  const auto state = sampleState(4, 9);
  {
    FileCheckpointStore store(dir_, 4);
    ASSERT_TRUE(store.save(state));
    ASSERT_TRUE(store.save(sampleState(4, 10)));
  }
  FileCheckpointStore reborn(dir_, 4);
  EXPECT_EQ(reborn.epoch(), 2u);
  ASSERT_TRUE(reborn.save(sampleState(4, 11)));
  EXPECT_EQ(reborn.epoch(), 3u);
  EXPECT_EQ(*reborn.restore(), sampleState(4, 11));
}

TEST_F(FileCheckpointStoreTest, StateSizeMismatchIsRejected) {
  FileCheckpointStore store(dir_, 4);
  EXPECT_THROW(store.save(sampleState(5, 1)), InvalidArgumentError);
  ASSERT_TRUE(store.save(sampleState(4, 1)));
  // A store opened with a different geometry does not accept the banks.
  FileCheckpointStore other(dir_, 8);
  EXPECT_EQ(other.epoch(), 0u);
  EXPECT_FALSE(other.restore().has_value());
}

}  // namespace
}  // namespace fefet::nvp
