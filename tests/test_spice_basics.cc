// Tests of the MNA circuit solver substrate: DC solves, linear transients
// against closed-form solutions, sources, switches and energy accounting.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "spice/waveform.h"

namespace fefet::spice {
namespace {

using shapes::dc;
using shapes::pulse;
using shapes::pwl;
using shapes::sine;

TEST(Shapes, PulseEnvelope) {
  const auto p = pulse(0.0, 1.0, 1e-9, 0.1e-9, 2e-9, 0.1e-9);
  EXPECT_DOUBLE_EQ(p(0.0), 0.0);
  EXPECT_NEAR(p(1.05e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p(2e-9), 1.0);
  EXPECT_DOUBLE_EQ(p(5e-9), 0.0);
}

TEST(Shapes, PulsePeriodicRepeats) {
  const auto p = pulse(0.0, 1.0, 0.0, 0.1e-9, 0.4e-9, 0.1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(p(0.3e-9), 1.0);
  EXPECT_DOUBLE_EQ(p(2.3e-9), 1.0);
  EXPECT_DOUBLE_EQ(p(1.5e-9), 0.0);
}

TEST(Shapes, PwlInterpolatesAndClamps) {
  const auto p = pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
  EXPECT_DOUBLE_EQ(p(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(p(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p(2.0), 0.0);
  EXPECT_DOUBLE_EQ(p(10.0), -2.0);
}

TEST(Shapes, SineValue) {
  const auto s = sine(0.5, 1.0, 1e9);
  EXPECT_NEAR(s(0.25e-9), 1.5, 1e-9);
}

TEST(Dc, VoltageDivider) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(2.0));
  n.add<Resistor>("R1", n.node("in"), n.node("mid"), 1000.0);
  n.add<Resistor>("R2", n.node("mid"), n.ground(), 3000.0);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("mid"), 1.5, 1e-7);  // gmin loading
  EXPECT_NEAR(sim.nodeVoltage("in"), 2.0, 1e-12);
}

TEST(Dc, SourceCurrentThroughLoad) {
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("a"), n.ground(), 500.0);
  Simulator sim(n);
  sim.solveDc();
  SystemView view(sim.solution(), n.nodeCount());
  EXPECT_NEAR(v->current(view), 1.0 / 500.0, 1e-12);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist n;
  n.add<CurrentSource>("I1", n.ground(), n.node("x"), dc(1e-3));
  n.add<Resistor>("R", n.node("x"), n.ground(), 2000.0);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("x"), 2.0, 1e-7);  // gmin loading
}

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1V step into R=1k, C=1pF: v(t) = 1 - exp(-t/RC), tau = 1 ns.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1000.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 5e-9;
  options.dtMax = 10e-12;
  const auto result = sim.runTransient(options, {Probe::v("out")});
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = 1.0 - std::exp(-t / 1e-9);
    EXPECT_NEAR(result.waveform.valueAt("v(out)", t), expected, 0.01);
  }
}

TEST(Transient, RcBackwardEulerAlsoConverges) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1000.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 3e-9;
  options.dtMax = 5e-12;
  options.method = IntegrationMethod::kBackwardEuler;
  const auto result = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(result.waveform.valueAt("v(out)", 1e-9), 1.0 - std::exp(-1.0),
              0.02);
}

TEST(Transient, EnergyConservationInRc) {
  // Charge C through R to V: source delivers C V^2; half stored, half
  // dissipated.  Check the source-side accounting.
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                                 pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1000.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 20e-9;  // >> tau: fully charged
  options.dtMax = 20e-12;
  sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(v->energyDelivered(), 1e-12, 0.05e-12);
}

TEST(Transient, CapacitorDividerStep) {
  // Series caps divide a step by the capacitance ratio.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.1e-9, 10e-12, 1.0, 10e-12));
  n.add<Capacitor>("C1", n.node("in"), n.node("mid"), 1e-15);
  n.add<Capacitor>("C2", n.node("mid"), n.ground(), 3e-15);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  const auto result = sim.runTransient(options, {Probe::v("mid")});
  EXPECT_NEAR(result.waveform.finalValue("v(mid)"), 0.25, 0.01);
}

TEST(Transient, TimedSwitchConnectsAndFloats) {
  // Charge a cap through a closed switch, open it, verify it holds.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("src"), n.ground(), dc(1.0));
  n.add<TimedSwitch>("S", n.node("src"), n.node("cap"),
                     pulse(1.0, 0.0, 2e-9, 1e-12, 1.0, 1e-12), 100.0);
  n.add<Capacitor>("C", n.node("cap"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 5e-9;
  options.dtMax = 10e-12;
  const auto result = sim.runTransient(options, {Probe::v("cap")});
  EXPECT_NEAR(result.waveform.valueAt("v(cap)", 1.9e-9), 1.0, 0.01);
  EXPECT_NEAR(result.waveform.finalValue("v(cap)"), 1.0, 0.02);
}

TEST(Transient, StatePersistsAcrossRuns) {
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1000.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 10e-9;
  sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(sim.nodeVoltage("out"), 1.0, 0.01);
  // Second run with the source at 0: discharge from the held state.
  v->setShape(dc(0.0));
  const auto r2 = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(r2.waveform.column("v(out)").front(), 1.0, 0.02);
  EXPECT_NEAR(r2.waveform.finalValue("v(out)"), 0.0, 0.01);
}

TEST(Netlist, NodeAndDeviceManagement) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_EQ(n.node("a"), a);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_TRUE(n.hasNode("a"));
  EXPECT_FALSE(n.hasNode("zzz"));
  n.add<Resistor>("R1", a, n.ground(), 1.0);
  EXPECT_NE(n.find("R1"), nullptr);
  EXPECT_EQ(n.find("R2"), nullptr);
  EXPECT_THROW(n.add<Resistor>("R1", a, n.ground(), 1.0),
               InvalidArgumentError);
  n.freeze();
  EXPECT_THROW(n.node("new-node"), InvalidArgumentError);
}

TEST(Netlist, AuxLabelsAssigned) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.0));
  n.add<VoltageSource>("V2", n.node("b"), n.ground(), dc(2.0));
  n.freeze();
  EXPECT_EQ(n.unknownCount(), 4);  // 2 nodes + 2 branch currents
  ASSERT_EQ(n.auxLabels().size(), 2u);
  EXPECT_EQ(n.auxLabels()[0], "i(V1)");
}

TEST(Waveform, CsvAndMeasurements) {
  Waveform w;
  w.addColumn("x");
  w.appendSample(0.0, {0.0});
  w.appendSample(1.0, {2.0});
  EXPECT_EQ(w.sampleCount(), 2u);
  EXPECT_DOUBLE_EQ(w.valueAt("x", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.maximum("x"), 2.0);
  EXPECT_DOUBLE_EQ(w.integral("x"), 1.0);
  EXPECT_NEAR(w.firstCrossing("x", 1.0, true), 0.5, 1e-12);
  std::ostringstream os;
  w.writeCsv(os);
  EXPECT_NE(os.str().find("time,x"), std::string::npos);
  EXPECT_THROW(w.column("nope"), InvalidArgumentError);
}

TEST(Waveform, EmptyColumnReducersThrowClearly) {
  Waveform w;
  w.addColumn("x");
  // No samples yet (a probe evaluated before any accepted timestep): every
  // reducer must throw rather than read col.front()/col.back().
  EXPECT_THROW(w.finalValue("x"), InvalidArgumentError);
  EXPECT_THROW(w.valueAt("x", 0.0), InvalidArgumentError);
  EXPECT_THROW(w.minimum("x"), InvalidArgumentError);
  EXPECT_THROW(w.maximum("x"), InvalidArgumentError);
  EXPECT_THROW(w.integral("x"), InvalidArgumentError);
  EXPECT_THROW(w.firstCrossing("x", 0.5, true), InvalidArgumentError);
  try {
    w.finalValue("x");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos)
        << "error should name the offending column";
  }
}

TEST(Waveform, ValueAtClampsAtBothEndsAndOnSingleSamples) {
  Waveform w;
  w.addColumn("x");
  w.appendSample(1.0, {10.0});
  // One sample: any query time returns that sample (clamp semantics).
  EXPECT_DOUBLE_EQ(w.valueAt("x", -5.0), 10.0);
  EXPECT_DOUBLE_EQ(w.valueAt("x", 1.0), 10.0);
  EXPECT_DOUBLE_EQ(w.valueAt("x", 99.0), 10.0);

  w.appendSample(2.0, {20.0});
  // Queries outside [t0, t1] clamp to the boundary samples — never
  // extrapolate the edge slope.
  EXPECT_DOUBLE_EQ(w.valueAt("x", 0.0), 10.0);
  EXPECT_DOUBLE_EQ(w.valueAt("x", 1.5), 15.0);
  EXPECT_DOUBLE_EQ(w.valueAt("x", 3.0), 20.0);
}

// Property: a long RC ladder solves identically via the dense and sparse
// paths (the solver switches representation at ~160 unknowns).
class LadderSize : public ::testing::TestWithParam<int> {};

TEST_P(LadderSize, DcLadderHasLinearVoltageProfile) {
  const int stages = GetParam();
  Netlist n;
  n.add<VoltageSource>("V1", n.node("n0"), n.ground(), dc(1.0));
  for (int i = 0; i < stages; ++i) {
    n.add<Resistor>("R" + std::to_string(i),
                    n.node("n" + std::to_string(i)),
                    n.node("n" + std::to_string(i + 1)), 100.0);
  }
  n.add<Resistor>("Rend", n.node("n" + std::to_string(stages)), n.ground(),
                  100.0);
  Simulator sim(n);
  sim.solveDc();
  // Node k of the uniform ladder: v = (stages + 1 - k) / (stages + 1).
  for (int k = 0; k <= stages; k += std::max(1, stages / 7)) {
    const double expected =
        static_cast<double>(stages + 1 - k) / (stages + 1);
    EXPECT_NEAR(sim.nodeVoltage("n" + std::to_string(k)), expected, 5e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LadderSize,
                         ::testing::Values(3, 20, 100, 200, 400));

}  // namespace
}  // namespace fefet::spice
