// Tests of the sparse LU structure cache: the linalg-level
// SparseLuFactorizer contracts (bit-identical solves, counter bookkeeping,
// pattern-change and pivot-drift fallbacks) and the solver-level guarantee
// that Newton trajectories are unchanged when MnaSystem reuses the cached
// structure across iterations and timesteps.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/linalg.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "spice/waveform.h"

namespace fefet {
namespace {

linalg::SparseMatrix tridiagonal(std::size_t n, double diag, double off) {
  linalg::SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, diag);
    if (i > 0) m.add(i, i - 1, off);
    if (i + 1 < n) m.add(i, i + 1, off);
  }
  return m;
}

TEST(SparseMatrix, SetZeroKeepStructurePreservesPattern) {
  linalg::SparseMatrix m(3);
  m.add(0, 0, 1.0);
  m.add(1, 2, -4.0);
  m.setZeroKeepStructure();
  EXPECT_EQ(m.nonZeros(), 2u);  // nodes survive as explicit zeros
  EXPECT_DOUBLE_EQ(m.row(0).at(0), 0.0);
  EXPECT_DOUBLE_EQ(m.row(1).at(2), 0.0);
  m.add(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.row(1).at(2), 5.0);
}

TEST(SparseLuFactorizer, MatchesFreshLuBitForBit) {
  const std::size_t n = 40;
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(1.0 + 0.37 * i);

  linalg::SparseLuFactorizer cached;
  for (int pass = 0; pass < 4; ++pass) {
    // Same pattern every pass, drifting values (like Newton iterations of
    // a fixed circuit); diagonal dominance keeps the pivot order stable.
    const double diag = 4.0 + 0.1 * pass;
    const double off = -1.0 - 0.01 * pass;
    const auto m = tridiagonal(n, diag, off);
    cached.factor(m);
    const linalg::SparseLu fresh(m);
    const auto xCached = cached.solve(b);
    const auto xFresh = fresh.solve(b);
    ASSERT_EQ(xCached.size(), xFresh.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(xCached[i], xFresh[i]) << "pass " << pass << " x[" << i
                                       << "] differs from fresh LU";
    }
  }
  EXPECT_EQ(cached.fullFactorizations(), 1);
  EXPECT_EQ(cached.numericRefactorizations(), 3);
  EXPECT_EQ(cached.pivotFallbacks(), 0);
}

TEST(SparseLuFactorizer, PatternChangeRunsFullFactorization) {
  linalg::SparseLuFactorizer cached;
  cached.factor(tridiagonal(10, 4.0, -1.0));
  EXPECT_EQ(cached.fullFactorizations(), 1);

  auto wider = tridiagonal(10, 4.0, -1.0);
  wider.add(0, 9, 0.5);  // new structural entry -> cache cannot be reused
  cached.factor(wider);
  EXPECT_EQ(cached.fullFactorizations(), 2);
  EXPECT_EQ(cached.numericRefactorizations(), 0);
  EXPECT_EQ(cached.pivotFallbacks(), 0);

  // The widened pattern becomes the new cache; repeating it reuses it.
  cached.factor(wider);
  EXPECT_EQ(cached.fullFactorizations(), 2);
  EXPECT_EQ(cached.numericRefactorizations(), 1);
}

TEST(SparseLuFactorizer, PivotDriftFallsBackToFullFactorization) {
  // Column 0: |a10| > |a00| initially, so partial pivoting permutes rows.
  linalg::SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 1.0);
  linalg::SparseLuFactorizer cached;
  cached.factor(a);
  EXPECT_EQ(cached.fullFactorizations(), 1);

  // Same pattern, but now |a00| wins the pivot scan: the cached pivot
  // sequence is stale and the factorizer must rebuild rather than reuse.
  linalg::SparseMatrix drifted(2);
  drifted.add(0, 0, 5.0);
  drifted.add(0, 1, 1.0);
  drifted.add(1, 0, 2.0);
  drifted.add(1, 1, 1.0);
  cached.factor(drifted);
  EXPECT_EQ(cached.pivotFallbacks(), 1);
  EXPECT_EQ(cached.fullFactorizations(), 2);

  const auto x = cached.solve(std::vector<double>{6.0, 3.0});
  const auto back = drifted.multiply(x);
  EXPECT_NEAR(back[0], 6.0, 1e-12);
  EXPECT_NEAR(back[1], 3.0, 1e-12);
}

TEST(SparseLuFactorizer, StillDetectsSingularMatrices) {
  linalg::SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 0, 1.0);  // column 1 empty -> singular
  linalg::SparseLuFactorizer cached;
  EXPECT_THROW(cached.factor(m), NumericalError);
}

// A long RC ladder pushes the unknown count past the sparse-path threshold
// (160) so the transient exercises SparseLuFactorizer inside MnaSystem.
spice::TransientResult runLadder(bool reuse, long* numericRefactorizations) {
  using namespace spice;
  Netlist n;
  constexpr int kStages = 200;
  n.add<VoltageSource>("V1", n.node("s0"), n.ground(),
                       shapes::pulse(0.0, 1.0, 0.0, 50e-12, 1.0, 50e-12));
  for (int i = 0; i < kStages; ++i) {
    const auto a = n.node("s" + std::to_string(i));
    const auto b = n.node("s" + std::to_string(i + 1));
    n.add<Resistor>("R" + std::to_string(i), a, b, 100.0);
    n.add<Capacitor>("C" + std::to_string(i), b, n.ground(), 1e-15);
  }
  NewtonOptions newton;
  newton.reuseLuStructure = reuse;
  Simulator sim(n, newton);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2e-9;
  options.dtMax = 20e-12;
  auto result = sim.runTransient(
      options, {Probe::v("s1"), Probe::v("s100"), Probe::v("s200")});
  if (numericRefactorizations) {
    *numericRefactorizations =
        sim.newton().sparseFactorizer().numericRefactorizations();
  }
  return result;
}

TEST(LuReuse, NewtonTrajectoryIsBitIdenticalWithAndWithoutCache) {
  long numericRefactorizations = 0;
  const auto cached = runLadder(true, &numericRefactorizations);
  const auto fresh = runLadder(false, nullptr);

  // The cache must actually have been exercised: every accepted step after
  // the first reuses the structure instead of re-deriving it.
  EXPECT_GT(numericRefactorizations, 10);

  ASSERT_EQ(cached.waveform.sampleCount(), fresh.waveform.sampleCount());
  const auto tCached = cached.waveform.time();
  const auto tFresh = fresh.waveform.time();
  for (std::size_t i = 0; i < tCached.size(); ++i) {
    ASSERT_EQ(tCached[i], tFresh[i]) << "timestep sequence diverged at " << i;
  }
  for (const char* col : {"v(s1)", "v(s100)", "v(s200)"}) {
    const auto a = cached.waveform.column(col);
    const auto b = fresh.waveform.column(col);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << col << " diverged at sample " << i;
    }
  }
}

}  // namespace
}  // namespace fefet
