// Tests of the load-line analysis (paper Fig. 4(a)): intersections of the
// FE Q-V characteristic with a MOS charge-voltage curve.
#include "ferro/load_line.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "xtor/mosfet_model.h"

namespace fefet::ferro {
namespace {

/// psi(Q) of the real 45nm card (through the compact model's inverse).
MosChargeVoltage mosCurve() {
  auto model = std::make_shared<xtor::MosfetModel>(xtor::nmos45(), 65e-9);
  return [model](double q) { return model->gateVoltageForCharge(q); };
}

TEST(LoadLine, ThinFilmMonostable) {
  // Paper Fig. 4(a): T_FE = 1 nm has a single intersection at V_G = 0.
  LandauKhalatnikov lk{LkCoefficients{}};
  const auto result = analyzeLoadLine(lk, 1e-9, mosCurve(), 0.0);
  EXPECT_EQ(result.equilibria.size(), 1u);
  EXPECT_FALSE(result.bistable());
  EXPECT_TRUE(result.equilibria.front().stable);
}

TEST(LoadLine, ThickFilmBistable) {
  // T_FE = 2.25 nm: three or more intersections (outer stable pair).
  LandauKhalatnikov lk{LkCoefficients{}};
  const auto result = analyzeLoadLine(lk, 2.25e-9, mosCurve(), 0.0);
  EXPECT_GE(result.equilibria.size(), 3u);
  EXPECT_TRUE(result.bistable());
  int stable = 0;
  for (const auto& eq : result.equilibria) stable += eq.stable ? 1 : 0;
  EXPECT_GE(stable, 2);
}

TEST(LoadLine, EquilibriaSatisfyKirchhoff) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const auto mos = mosCurve();
  const double vg = 0.2;
  const auto result = analyzeLoadLine(lk, 2.25e-9, mos, vg);
  for (const auto& eq : result.equilibria) {
    EXPECT_NEAR(eq.mosVoltage + eq.feVoltage, vg, 1e-6);
    EXPECT_NEAR(eq.mosVoltage, mos(eq.charge), 1e-9);
  }
}

TEST(LoadLine, SampledBranchesProvided) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const auto result = analyzeLoadLine(lk, 2.25e-9, mosCurve(), 0.0);
  ASSERT_EQ(result.chargeGrid.size(), result.feBranch.size());
  ASSERT_EQ(result.chargeGrid.size(), result.mosBranch.size());
  EXPECT_GT(result.chargeGrid.size(), 100u);
}

TEST(LoadLine, CriticalThicknessNearTwoNm) {
  // Bistability at V_G = 0 appears at the paper's nonvolatility onset.
  LandauKhalatnikov lk{LkCoefficients{}};
  const double tc =
      criticalThicknessForBistability(lk, mosCurve(), 1.0e-9, 2.5e-9);
  EXPECT_GT(tc, 1.8e-9);
  EXPECT_LT(tc, 2.2e-9);
}

TEST(LoadLine, CriticalThicknessBracketsValidated) {
  LandauKhalatnikov lk{LkCoefficients{}};
  EXPECT_THROW(
      criticalThicknessForBistability(lk, mosCurve(), 2.2e-9, 2.5e-9),
      InvalidArgumentError);  // lower bracket already bistable
  EXPECT_THROW(
      criticalThicknessForBistability(lk, mosCurve(), 0.5e-9, 1.0e-9),
      InvalidArgumentError);  // upper bracket not bistable
}

TEST(LoadLine, LinearCapacitorReferenceCase) {
  // Against an ideal linear capacitor psi = Q/C the bistability threshold
  // is exactly t|alpha| = 1/C; check both sides.
  LandauKhalatnikov lk{LkCoefficients{}};
  const double c = 0.1;  // F/m^2
  const MosChargeVoltage linear = [c](double q) { return q / c; };
  const double tCrit = 1.0 / (c * 7e9);
  EXPECT_FALSE(analyzeLoadLine(lk, 0.9 * tCrit, linear, 0.0).bistable());
  EXPECT_TRUE(analyzeLoadLine(lk, 1.2 * tCrit, linear, 0.0).bistable());
}

// Property sweep: gate voltage shifts the equilibrium set monotonically
// (the largest stable charge grows with V_G).
class LoadLineVsBias : public ::testing::TestWithParam<double> {};

TEST_P(LoadLineVsBias, LargestChargeGrowsWithGateVoltage) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const auto mos = mosCurve();
  const double vg = GetParam();
  const auto lo = analyzeLoadLine(lk, 2.25e-9, mos, vg);
  const auto hi = analyzeLoadLine(lk, 2.25e-9, mos, vg + 0.2);
  ASSERT_FALSE(lo.equilibria.empty());
  ASSERT_FALSE(hi.equilibria.empty());
  EXPECT_GE(hi.equilibria.back().charge, lo.equilibria.back().charge - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GateBiases, LoadLineVsBias,
                         ::testing::Values(-0.4, -0.2, 0.0, 0.2, 0.4, 0.6));

}  // namespace
}  // namespace fefet::ferro
