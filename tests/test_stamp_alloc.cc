// Heap-allocation audit of the compiled stamp pipeline: after a warm-up
// solve, the Newton steady state (assemble + factor + solve, LU structure
// reuse on) must perform zero heap allocations on both the dense and the
// sparse storage paths.
//
// The audit replaces the global operator new/delete with counting
// wrappers for the whole test binary; counting is only armed around the
// windows under test, so gtest's own bookkeeping does not pollute the
// numbers.  This test is kept out of the sanitizer builds' special cases
// by design: ASan interposes its own allocator *under* these wrappers, so
// the counts remain valid there too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "spice/extras.h"
#include "spice/netlist.h"
#include "spice/newton.h"
#include "spice/passives.h"
#include "spice/sources.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<long> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace fefet::spice {
namespace {

// RC/diode ladder sized by stage count: small counts stay on the dense
// path, large counts cross kDenseToSparseCrossover onto the sparse path.
void buildLadder(Netlist& n, int stages) {
  n.add<VoltageSource>("V1", n.node("s0"), n.ground(), shapes::dc(1.0));
  for (int i = 0; i < stages; ++i) {
    const auto a = n.node("s" + std::to_string(i));
    const auto b = n.node("s" + std::to_string(i + 1));
    n.add<Resistor>("R" + std::to_string(i), a, b, 100.0);
    n.add<Capacitor>("C" + std::to_string(i), b, n.ground(), 1e-15);
    if (i % 7 == 0) {
      n.add<Diode>("D" + std::to_string(i), b, n.ground());
    }
  }
}

long allocationsDuringSolves(int stages, bool batchedKernels = false) {
  Netlist n;
  buildLadder(n, stages);
  NewtonOptions options;
  options.useCompiledStamps = true;
  options.useBatchedKernels = batchedKernels;
  NewtonSolver solver(n, options);

  std::vector<double> x(static_cast<std::size_t>(n.unknownCount()), 0.0);
  for (const auto& device : n.devices()) device->seedUnknowns(x);

  // Warm-up: first solve sizes dx_, performs the one full symbolic LU
  // factorization and settles every workspace.
  NewtonStats stats =
      solver.solve(x, /*dc=*/false, 1e-10, 1e-12,
                   IntegrationMethod::kBackwardEuler);
  EXPECT_TRUE(stats.converged);

  g_allocations.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  for (int step = 0; step < 4; ++step) {
    stats = solver.solve(x, /*dc=*/false, (2 + step) * 1e-10, 1e-12,
                         IntegrationMethod::kBackwardEuler);
  }
  g_armed.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(stats.converged);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(StampAlloc, DensePathSteadyStateIsAllocationFree) {
  EXPECT_EQ(allocationsDuringSolves(/*stages=*/40), 0);
}

TEST(StampAlloc, SparsePathSteadyStateIsAllocationFree) {
  EXPECT_EQ(allocationsDuringSolves(/*stages=*/200), 0);
}

// The SoA batch path gathers/evaluates into scratch vectors sized once at
// freeze(); its steady state must be as allocation-free as the scalar
// slot-program replay on both storage paths.
TEST(StampAlloc, BatchedDensePathSteadyStateIsAllocationFree) {
  EXPECT_EQ(allocationsDuringSolves(/*stages=*/40, /*batchedKernels=*/true),
            0);
}

TEST(StampAlloc, BatchedSparsePathSteadyStateIsAllocationFree) {
  EXPECT_EQ(allocationsDuringSolves(/*stages=*/200, /*batchedKernels=*/true),
            0);
}

}  // namespace
}  // namespace fefet::spice
