// Tests of the ferroelectric material database, the (Pr, Ec) -> Landau
// inversion, and the fatigue/endurance model.
#include <cmath>
#include <gtest/gtest.h>

#include "core/fefet.h"
#include "ferro/fatigue.h"
#include "ferro/lk_model.h"
#include "ferro/material_db.h"

namespace fefet::ferro {
namespace {

TEST(LkFromPrEc, RoundTripsThroughTheModel) {
  for (const auto& [pr, ec] : std::initializer_list<std::pair<double, double>>{
           {0.30, 5e6}, {0.17, 1e8}, {0.08, 4e6}, {0.4636, 1.2435e9}}) {
    const auto c = lkFromPrEc(pr, ec);
    LandauKhalatnikov lk(c);
    EXPECT_NEAR(lk.remnantPolarization(), pr, 1e-9 * pr) << pr;
    EXPECT_NEAR(lk.coerciveField(), ec, 1e-6 * ec) << ec;
  }
}

TEST(LkFromPrEc, RejectsNonPhysical) {
  EXPECT_THROW(lkFromPrEc(0.0, 1e6), InvalidArgumentError);
  EXPECT_THROW(lkFromPrEc(0.2, -1.0), InvalidArgumentError);
}

TEST(MaterialDb, ContainsTheExpectedEntries) {
  const auto db = materialDatabase();
  ASSERT_EQ(db.size(), 4u);
  EXPECT_EQ(db[0].name, "dac16-table2");
  EXPECT_NO_THROW(findMaterial("pzt"));
  EXPECT_NO_THROW(findMaterial("hzo"));
  EXPECT_THROW(findMaterial("unobtanium"), InvalidArgumentError);
}

TEST(MaterialDb, PaperMaterialMatchesTable2) {
  const auto& m = findMaterial("dac16-table2");
  LandauKhalatnikov lk(m.lk);
  EXPECT_NEAR(lk.remnantPolarization(), 0.4636, 2e-4);
  EXPECT_NEAR(lk.coerciveField(), 1.2435e9, 2e6);
}

TEST(MaterialDb, CoerciveFieldDecidesFefetScalability) {
  // The critical FE thickness for FEFET non-volatility scales inversely
  // with |alpha| ~ Ec/Pr: hafnia-class fields give nm films; perovskites
  // would need hundreds of nm (impractical gate stacks).
  const auto tCritOf = [](const std::string& name) {
    core::FefetParams p;
    p.lk = findMaterial(name).lk;
    // |alpha| * t_crit ~ 1/Cox: estimate, then verify with the window
    // analysis at 1.5x the estimate.
    const double alphaMag = std::abs(p.lk.alpha);
    const double tEstimate = 9.2 / alphaMag;
    p.feThickness = 1.5 * tEstimate;
    return std::pair(tEstimate, core::analyzeHysteresis(p).hysteretic);
  };
  const auto [tPaper, hPaper] = tCritOf("dac16-table2");
  const auto [tHzo, hHzo] = tCritOf("hzo");
  const auto [tPzt, hPzt] = tCritOf("pzt");
  EXPECT_LT(tPaper, 3e-9);
  EXPECT_LT(tHzo, 15e-9);   // nm-class: practical
  EXPECT_GT(tPzt, 100e-9);  // PZT: impractical as a gate stack
  EXPECT_TRUE(hPaper);
  EXPECT_TRUE(hHzo);
  EXPECT_TRUE(hPzt);  // hysteretic too, just at absurd thickness
}

TEST(Fatigue, FreshFilmIsPristine) {
  FatigueModel model;
  EXPECT_DOUBLE_EQ(model.retainedFraction(0.0), 1.0);
  EXPECT_NEAR(model.retainedFraction(1.0), 1.0, 1e-6);
}

TEST(Fatigue, HalfLifeDefinition) {
  FatigueParams p;
  p.halfLifeCycles = 1e10;
  p.floorFraction = 0.0;
  FatigueModel model(p);
  EXPECT_NEAR(model.retainedFraction(1e10), 0.5, 1e-12);
}

TEST(Fatigue, MonotoneDecayTowardFloor) {
  FatigueModel model(pztFatigue());
  double prev = 1.0;
  for (double n = 1e3; n <= 1e16; n *= 10.0) {
    const double f = model.retainedFraction(n);
    EXPECT_LE(f, prev);
    EXPECT_GE(f, model.params().floorFraction);
    prev = f;
  }
}

TEST(Fatigue, CyclesToFractionInvertsRetained) {
  FatigueModel model(hzoFatigue());
  const double n = model.cyclesToFraction(0.6);
  EXPECT_NEAR(model.retainedFraction(n), 0.6, 1e-9);
}

TEST(Fatigue, FloorMakesTargetUnreachable) {
  FatigueParams p;
  p.floorFraction = 0.4;
  FatigueModel model(p);
  EXPECT_TRUE(std::isinf(model.cyclesToFraction(0.3)));
}

TEST(Fatigue, EnduranceOrderingSbtBestHzoWorst) {
  const double sbt = FatigueModel(sbtFatigue()).enduranceCycles();
  const double pzt = FatigueModel(pztFatigue()).enduranceCycles();
  const double hzo = FatigueModel(hzoFatigue()).enduranceCycles();
  EXPECT_GT(sbt, pzt);
  EXPECT_GT(pzt, hzo * 0.1);  // same ballpark, PZT slightly better
  EXPECT_GT(sbt, 1e13);       // the "high endurance" claim for FE memories
}

TEST(Fatigue, RejectsBadParameters) {
  FatigueParams p;
  p.halfLifeCycles = 0.0;
  EXPECT_THROW(FatigueModel{p}, InvalidArgumentError);
  FatigueParams q;
  q.floorFraction = 1.0;
  EXPECT_THROW(FatigueModel{q}, InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::ferro
