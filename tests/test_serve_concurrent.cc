// Concurrency tests of the serving layer: multi-threaded submitters
// driving MacroService shard workers, with exactness assertions on the
// endurance meter, ResilienceReport and admission tallies after drain()
// (no lost updates), and acked-write survival under power-fail storms.
// Runs under the TSan configuration (scripts/check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/request.h"
#include "serve/service.h"

namespace fefet::serve {
namespace {

constexpr int kThreads = 4;
constexpr int kKeysPerThread = 64;
constexpr std::uint64_t kKeys =
    static_cast<std::uint64_t>(kThreads) * kKeysPerThread;

ServiceConfig concurrentConfig() {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.store.dataWords = 64;  // 4 * 64 slots == kKeys exactly
  cfg.store.ringSlots = 8;   // small ring: forced checkpoints under load
  cfg.store.macro.rows = 64;
  cfg.store.macro.cols = 64;
  cfg.admission.queueCapacityPerShard = 1024;
  cfg.admission.brownoutEnterUtilization = 2.0;  // isolate from brownout
  cfg.admission.brownoutExitUtilization = 0.5;
  cfg.wearSteerFloor = 1e9;  // keep routing pure key % shards
  return cfg;
}

std::uint32_t valueOf(std::uint64_t key) {
  return 0x5EED0000u + static_cast<std::uint32_t>(key);
}

/// Fan kKeys distinct single-key writes across kThreads submitters.
void submitFromThreads(MacroService& service, std::vector<char>& acked) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &acked, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(t) * kKeysPerThread + i;
        Request w;
        w.op = OpType::kWrite;
        w.cls = (t & 1) ? TrafficClass::kStorageMode
                        : TrafficClass::kCacheMode;
        w.address = key;
        w.value = valueOf(key);
        // Each completion touches only its own slot; drain() gives the
        // main thread the happens-before to read them all.
        service.submit(w, [&acked, key](const Response& r) {
          if (r.ok()) acked[key] = 1;
        });
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(ServeConcurrent, ExactTalliesAcrossShardWorkersWithoutChaos) {
  auto cfg = concurrentConfig();
  cfg.store.resilience.enabled = true;  // run the report machinery too
  MacroService service(cfg);
  std::vector<char> acked(kKeys, 0);
  submitFromThreads(service, acked);
  service.drain();

  // Every write admitted, executed and acknowledged exactly once.
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kKeys);
  EXPECT_EQ(stats.completedOk, kKeys);
  EXPECT_EQ(stats.ackedWrites, kKeys);
  EXPECT_EQ(stats.shedOverload, 0u);
  EXPECT_EQ(stats.shedReadOnly, 0u);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_TRUE(acked[key]) << key;
  }

  // No lost updates through the workers: the per-shard store tallies sum
  // exactly, and every macro word write is accounted for — each service
  // write is 4 ring words + 1 data word, plus bankWords per checkpoint.
  std::uint64_t storeWrites = 0;
  for (int s = 0; s < service.shards(); ++s) {
    const ShardStore& store = service.shard(s);
    const ShardStoreStats& ss = store.stats();
    storeWrites += ss.writes;
    const std::uint64_t expectedWordWrites =
        5 * ss.writes +
        static_cast<std::uint64_t>(store.checkpointOpWords()) *
            ss.checkpoints;
    EXPECT_EQ(static_cast<std::uint64_t>(store.macro().writeAccesses()),
              expectedWordWrites)
        << "shard " << s;
    // The ResilienceReport word tally agrees with the macro's own meter.
    EXPECT_EQ(static_cast<std::uint64_t>(store.report().wordWrites),
              expectedWordWrites)
        << "shard " << s;
    EXPECT_EQ(ss.powerFails, 0u);
    EXPECT_GT(ss.forcedCheckpoints, 0u) << "ring never wrapped; weak test";
    // The endurance meter moved and is finite (exactness of the published
    // per-shard wear is what the router depends on).
    EXPECT_GT(store.wearCycles(), 0.0);
  }
  EXPECT_EQ(storeWrites, kKeys);
  service.stop();
}

TEST(ServeConcurrent, AckedWritesSurviveStormsUnderConcurrency) {
  auto cfg = concurrentConfig();
  cfg.storm.opFailProbability = 0.15;
  cfg.storm.seed = 808;
  cfg.maxAttempts = 8;
  cfg.retryBackoffSeconds = 1e-6;
  cfg.retryBackoffMaxSeconds = 20e-6;
  MacroService service(cfg);
  std::vector<char> acked(kKeys, 0);
  submitFromThreads(service, acked);
  service.drain();

  const auto stats = service.stats();
  EXPECT_GT(stats.powerFails, 0u) << "storm did not fire; weak test";
  EXPECT_GT(stats.recoveries, 0u);
  std::uint64_t ackedCount = 0;
  for (const char f : acked) ackedCount += static_cast<std::uint64_t>(f);
  EXPECT_EQ(stats.ackedWrites, ackedCount);
  std::uint64_t storeWrites = 0;
  for (int s = 0; s < service.shards(); ++s) {
    storeWrites += service.shard(s).stats().writes;
  }
  EXPECT_EQ(storeWrites, ackedCount);  // exact even through recoveries

  // Crash-consistency invariants, verified through the service itself:
  // every acked key serves its exact value; a dropped key is all-old or
  // all-new, never a torn mix.
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    Request r;
    r.op = OpType::kRead;
    r.address = key;
    std::uint32_t got = 0;
    Status status = Status::kCancelled;
    service.submit(r, [&](const Response& resp) {
      got = resp.value;
      status = resp.status;
    });
    service.drain();
    ASSERT_EQ(status, Status::kOk) << key;
    if (acked[key]) {
      EXPECT_EQ(got, valueOf(key)) << "acked write lost, key " << key;
    } else {
      EXPECT_TRUE(got == 0u || got == valueOf(key))
          << "torn word served, key " << key;
    }
  }
  service.stop();
}

TEST(ServeConcurrent, OverloadAccountingConservesEveryRequest) {
  auto cfg = concurrentConfig();
  cfg.admission.queueCapacityPerShard = 4;  // tiny: force sheds
  cfg.admission.brownoutEnterUtilization = 0.9;
  cfg.admission.brownoutExitUtilization = 0.45;
  MacroService service(cfg);
  constexpr int kHammerThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<std::uint64_t> completions{0};
  std::atomic<std::uint64_t> oks{0};
  std::atomic<std::uint64_t> sheds{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Request w;
        w.op = OpType::kWrite;
        w.cls = (t & 1) ? TrafficClass::kStorageMode
                        : TrafficClass::kCacheMode;
        w.address = static_cast<std::uint64_t>(i % 32);  // always routable
        w.value = static_cast<std::uint32_t>(i);
        service.submit(w, [&](const Response& r) {
          completions.fetch_add(1, std::memory_order_relaxed);
          if (r.ok()) oks.fetch_add(1, std::memory_order_relaxed);
          if (r.status == Status::kRejectedOverload ||
              r.status == Status::kRejectedReadOnly) {
            sheds.fetch_add(1, std::memory_order_relaxed);
            EXPECT_GT(r.retryAfterSeconds, 0.0);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  service.drain();

  // Exactly-once completion and exact conservation: every submission is
  // either admitted (and completed by a worker) or shed — none lost,
  // none double-counted, even with 8 threads racing 4 tiny queues.
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kHammerThreads) * kPerThread;
  EXPECT_EQ(completions.load(), kTotal);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  const auto& adm = stats.admission;
  EXPECT_EQ(adm.totalAdmitted() + adm.totalShed(), kTotal);
  EXPECT_EQ(sheds.load(), adm.totalShed());
  EXPECT_EQ(oks.load(), adm.totalAdmitted());
  EXPECT_GT(sheds.load(), 0u) << "queues never filled; weak test";
  // The brownout CAS keeps enter/exit exact: after quiescence the machine
  // is out of read-only and the transition counters balance.
  EXPECT_FALSE(adm.readOnly);
  EXPECT_EQ(adm.brownoutEntries, adm.brownoutExits);
  service.stop();
}

}  // namespace
}  // namespace fefet::serve
