// SweepJournal unit tests: the CRC primitive, escaping, the write/load
// round-trip and — the point of the design — every corruption mode
// degrading gracefully (truncated tail, corrupted CRC, config mismatch,
// zero-length and garbage files) without crashing or dropping the valid
// prefix.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/sweep_journal.h"

namespace fefet {
namespace {

class SweepJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "sweep_journal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string readFile() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }
  void writeFile(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  /// A journal with a header (3 points, seed 7, digest 99) and records for
  /// points 0 and 2.
  void writeReference() const {
    sim::SweepJournal journal(path_, 3, 7, 99);
    journal.appendPoint(0, "alpha");
    journal.appendPoint(2, "gamma");
  }

  std::string path_;
};

TEST(SweepJournalCrc, MatchesTheIeeeCheckValue) {
  EXPECT_EQ(sim::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(sim::crc32(""), 0x00000000u);
  EXPECT_NE(sim::crc32("abc"), sim::crc32("abd"));
}

TEST(SweepJournalEscape, ControlAndQuoteCharactersRoundTrip) {
  EXPECT_EQ(sim::jsonEscape("plain"), "plain");
  EXPECT_EQ(sim::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(sim::jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(sim::jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST_F(SweepJournalTest, WriteThenLoadRoundTrips) {
  writeReference();
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(load.usable);
  EXPECT_TRUE(load.warning.empty()) << load.warning;
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].index, 0u);
  EXPECT_EQ(load.records[0].payload, "alpha");
  EXPECT_EQ(load.records[1].index, 2u);
  EXPECT_EQ(load.records[1].payload, "gamma");
  EXPECT_EQ(load.validBytes, readFile().size());
}

TEST_F(SweepJournalTest, BinaryishPayloadRoundTrips) {
  {
    sim::SweepJournal journal(path_, 1, 1, 0);
    journal.appendPoint(0, std::string("a\"b\\c\nd\x01e"));
  }
  const auto load = sim::SweepJournal::load(path_, 1, 1, 0);
  ASSERT_TRUE(load.usable);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].payload, std::string("a\"b\\c\nd\x01e"));
}

TEST_F(SweepJournalTest, MissingFileStartsFresh) {
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_FALSE(load.usable);
  EXPECT_NE(load.warning.find("does not exist"), std::string::npos);
  EXPECT_TRUE(load.records.empty());
}

TEST_F(SweepJournalTest, ZeroLengthFileStartsFreshWithWarning) {
  writeFile("");
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_FALSE(load.usable);
  EXPECT_NE(load.warning.find("empty"), std::string::npos);
}

TEST_F(SweepJournalTest, GarbageFileStartsFreshWithWarning) {
  writeFile("this is not a journal\nnot even close\n");
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_FALSE(load.usable);
  EXPECT_NE(load.warning.find("no valid header"), std::string::npos);
}

TEST_F(SweepJournalTest, TruncatedMidRecordKeepsTheValidPrefix) {
  writeReference();
  const std::string full = readFile();
  // Chop the last record in half: a torn tail from a mid-write kill.
  writeFile(full.substr(0, full.size() - 10));
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(load.usable);
  EXPECT_NE(load.warning.find("torn tail"), std::string::npos);
  ASSERT_EQ(load.records.size(), 1u);  // the prefix survives
  EXPECT_EQ(load.records[0].payload, "alpha");
  EXPECT_LT(load.validBytes, full.size());
}

TEST_F(SweepJournalTest, CorruptedCrcDropsOnlyTheDamagedSuffix) {
  writeReference();
  std::string full = readFile();
  // Flip one payload byte inside the LAST record: its CRC check must fail.
  const auto pos = full.rfind("gamma");
  ASSERT_NE(pos, std::string::npos);
  full[pos] = 'X';
  writeFile(full);
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(load.usable);
  EXPECT_NE(load.warning.find("corrupt record"), std::string::npos);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].payload, "alpha");
}

TEST_F(SweepJournalTest, MismatchedConfigDigestStartsFresh) {
  writeReference();
  const auto load = sim::SweepJournal::load(path_, 3, 7, /*configDigest=*/100);
  EXPECT_FALSE(load.usable);
  EXPECT_NE(load.warning.find("different run configuration"),
            std::string::npos);
  EXPECT_TRUE(load.records.empty());
}

TEST_F(SweepJournalTest, MismatchedPointCountOrSeedStartsFresh) {
  writeReference();
  EXPECT_FALSE(sim::SweepJournal::load(path_, 4, 7, 99).usable);
  EXPECT_FALSE(sim::SweepJournal::load(path_, 3, 8, 99).usable);
}

TEST_F(SweepJournalTest, DuplicateIndexKeepsTheFirstRecord) {
  {
    sim::SweepJournal journal(path_, 3, 7, 99);
    journal.appendPoint(1, "first");
    journal.appendPoint(1, "second");
  }
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(load.usable);
  EXPECT_NE(load.warning.find("repeats point 1"), std::string::npos);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].payload, "first");
}

TEST_F(SweepJournalTest, OutOfRangeIndexTruncatesToTheLastGoodRecord) {
  {
    sim::SweepJournal journal(path_, 3, 7, 99);
    journal.appendPoint(0, "ok");
    journal.appendPoint(7, "out of range");  // index >= expectedPoints
  }
  const auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(load.usable);
  EXPECT_NE(load.warning.find("malformed point record"), std::string::npos);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].payload, "ok");
}

TEST_F(SweepJournalTest, ResumeTruncatesTheTornTailAndAppends) {
  writeReference();
  const std::string full = readFile();
  writeFile(full + "{\"crc\":\"00000000\",\"rec\":{\"type\":\"poi");  // torn
  auto load = sim::SweepJournal::load(path_, 3, 7, 99);
  ASSERT_TRUE(load.usable);
  {
    sim::SweepJournal journal(path_, 3, 7, 99, &load);
    journal.appendPoint(1, "beta");
  }
  const auto reloaded = sim::SweepJournal::load(path_, 3, 7, 99);
  EXPECT_TRUE(reloaded.usable);
  EXPECT_TRUE(reloaded.warning.empty()) << reloaded.warning;
  ASSERT_EQ(reloaded.records.size(), 3u);  // alpha, gamma, beta — no tail
}

TEST_F(SweepJournalTest, FreshOpenOverwritesAnExistingJournal) {
  writeReference();
  { sim::SweepJournal journal(path_, 5, 11, 13); }
  const auto load = sim::SweepJournal::load(path_, 5, 11, 13);
  EXPECT_TRUE(load.usable);
  EXPECT_TRUE(load.records.empty());
}

}  // namespace
}  // namespace fefet
