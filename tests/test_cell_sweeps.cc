// Cross-parameter property sweeps: the full cell lifecycle across the
// nonvolatile thickness range, sense-chain correctness across thickness,
// and transistor temperature laws.
#include <cmath>
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/cell2t.h"
#include "core/materials.h"
#include "core/sense_amp.h"
#include "xtor/mosfet_model.h"

namespace fefet {
namespace {

// ---------------------------------------------------------------------
// Full write/read/hold lifecycle at every nonvolatile design thickness.
// ---------------------------------------------------------------------
class CellAcrossThickness : public ::testing::TestWithParam<double> {};

TEST_P(CellAcrossThickness, FullLifecycle) {
  core::Cell2TConfig cfg;
  cfg.fefet.lk = core::fefetMaterial();
  cfg.fefet.feThickness = GetParam();
  // Thicker films need larger bit-line swing (wider window).
  const auto window = core::analyzeHysteresis(cfg.fefet);
  ASSERT_TRUE(window.nonvolatile);
  const double vw = std::max(0.68, std::max(window.upSwitchVoltage,
                                            -window.downSwitchVoltage) +
                                       0.25);
  cfg.levels.vWrite = vw;
  cfg.levels.writeBoost = 2.0 * vw;
  core::Cell2T cell(cfg);

  cell.setStoredBit(false);
  ASSERT_TRUE(cell.write(true, 2e-9).bitAfter) << "t=" << GetParam();
  ASSERT_TRUE(cell.hold(20e-9).bitAfter);
  const auto r1 = cell.read();
  EXPECT_TRUE(r1.bitAfter);
  EXPECT_GT(r1.readCurrent, 1e-5);
  ASSERT_FALSE(cell.write(false, 2.5e-9).bitAfter);
  const auto r0 = cell.read();
  EXPECT_FALSE(r0.bitAfter);
  EXPECT_GT(r1.readCurrent / std::max(r0.readCurrent, 1e-15), 1e4);
}

INSTANTIATE_TEST_SUITE_P(Thicknesses, CellAcrossThickness,
                         ::testing::Values(2.1e-9, 2.25e-9, 2.4e-9));

// ---------------------------------------------------------------------
// The sense chain digitizes correctly across the design range too.
// ---------------------------------------------------------------------
class SenseAcrossThickness : public ::testing::TestWithParam<double> {};

TEST_P(SenseAcrossThickness, DigitizesBothStates) {
  core::SenseAmpConfig cfg;
  cfg.fefet.lk = core::fefetMaterial();
  cfg.fefet.feThickness = GetParam();
  core::SenseAmpCircuit circuit(cfg);
  EXPECT_TRUE(circuit.simulateRead(true).bitRead);
  EXPECT_FALSE(circuit.simulateRead(false).bitRead);
}

INSTANTIATE_TEST_SUITE_P(Thicknesses, SenseAcrossThickness,
                         ::testing::Values(2.1e-9, 2.25e-9, 2.4e-9));

// ---------------------------------------------------------------------
// Transistor temperature laws.
// ---------------------------------------------------------------------
class MosfetAcrossTemperature : public ::testing::TestWithParam<double> {};

TEST_P(MosfetAcrossTemperature, SubthresholdSlopeScalesWithT) {
  const double temperature = GetParam();
  xtor::MosParams params = xtor::nmos45();
  params.temperature = temperature;
  const xtor::MosfetModel m(params, 65e-9);
  const double i1 = m.idsAt(1.0, 0.10, 0.0);
  const double i2 = m.idsAt(1.0, 0.20, 0.0);
  const double ssMeasured = 0.1 / std::log10(i2 / i1) * 1e3;  // mV/dec
  const double ssExpected = params.slopeFactor *
                            constants::kBoltzmann * temperature /
                            constants::kElementaryCharge * std::log(10.0) *
                            1e3;
  EXPECT_NEAR(ssMeasured, ssExpected, 0.12 * ssExpected);
}

TEST_P(MosfetAcrossTemperature, LeakageGrowsWithT) {
  const double temperature = GetParam();
  xtor::MosParams hot = xtor::nmos45();
  hot.temperature = temperature + 50.0;
  xtor::MosParams cold = xtor::nmos45();
  cold.temperature = temperature;
  EXPECT_GT(xtor::MosfetModel(hot, 65e-9).idsAt(1.0, 0.0, 0.0),
            xtor::MosfetModel(cold, 65e-9).idsAt(1.0, 0.0, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Temperatures, MosfetAcrossTemperature,
                         ::testing::Values(250.0, 300.0, 350.0, 400.0));

// ---------------------------------------------------------------------
// Write-energy monotonicity in voltage at fixed pulse width.
// ---------------------------------------------------------------------
class EnergyVsVoltage : public ::testing::TestWithParam<double> {};

TEST_P(EnergyVsVoltage, MoreVoltageMoreEnergy) {
  core::Cell2TConfig cfg;
  cfg.fefet.lk = core::fefetMaterial();
  core::Cell2T cell(cfg);
  const double v = GetParam();
  cell.setStoredBit(false);
  const double e1 = cell.write(true, 1.5e-9, v).totalEnergy;
  cell.setStoredBit(false);
  const double e2 = cell.write(true, 1.5e-9, v + 0.15).totalEnergy;
  EXPECT_GT(e2, e1);
}

INSTANTIATE_TEST_SUITE_P(Voltages, EnergyVsVoltage,
                         ::testing::Values(0.55, 0.68, 0.85));

}  // namespace
}  // namespace fefet
