// Tests of the layout/area estimator (paper Fig. 11: 2.4x cell area) and
// the macro energy reconstruction (paper Table 3).
#include <cmath>
#include <gtest/gtest.h>

#include "core/design_space.h"
#include "core/macro_energy.h"
#include "core/materials.h"
#include "layout/layout.h"

namespace fefet {
namespace {

TEST(Layout, CellAreaRatioIsAboutTwoPointFour) {
  layout::DesignRules rules;
  const double ratio = layout::cellAreaRatio(rules, 65e-9);
  EXPECT_NEAR(ratio, 2.4, 0.1);
}

TEST(Layout, FootprintsPositiveAndDocumented) {
  layout::DesignRules rules;
  const auto fefet = layout::fefet2TCell(rules, 65e-9);
  const auto feram = layout::feram1T1CCell(rules, 65e-9);
  EXPECT_GT(fefet.area(), feram.area());
  EXPECT_GT(feram.area(), 0.0);
  EXPECT_NE(fefet.breakdown.find("2T FEFET"), std::string::npos);
  EXPECT_NE(feram.breakdown.find("1T-1C"), std::string::npos);
}

TEST(Layout, TwoByTwoArrayTilesLikeFig11) {
  layout::DesignRules rules;
  const auto cell = layout::fefet2TCell(rules, 65e-9);
  const auto arr = layout::tileArray(cell, 2, 2);
  EXPECT_DOUBLE_EQ(arr.area(), 4.0 * cell.area());
  EXPECT_DOUBLE_EQ(arr.rowWireLength, 2.0 * cell.width);
  EXPECT_DOUBLE_EQ(arr.colWireLength, 2.0 * cell.height);
}

TEST(Layout, RatioGrowsWithNarrowerDevices) {
  // The 2T penalty is relatively worse for narrow transistors (fixed
  // overheads dominate); ratio must stay in a sane band either way.
  layout::DesignRules rules;
  const double r50 = layout::cellAreaRatio(rules, 50e-9);
  const double r130 = layout::cellAreaRatio(rules, 130e-9);
  EXPECT_GT(r50, 1.5);
  EXPECT_LT(r130, 3.0);
}

TEST(Layout, RejectsBadInputs) {
  layout::DesignRules rules;
  EXPECT_THROW(layout::fefet2TCell(rules, 0.0), InvalidArgumentError);
  const auto cell = layout::feram1T1CCell(rules, 65e-9);
  EXPECT_THROW(layout::tileArray(cell, 0, 4), InvalidArgumentError);
}

TEST(MacroEnergy, ReconstructsTable3WithinTenPercent) {
  core::MacroEnergyModel model;
  const auto fefet = model.fefet();
  const auto feram = model.feram();
  EXPECT_DOUBLE_EQ(fefet.bitLineVoltage, 0.68);
  EXPECT_DOUBLE_EQ(feram.bitLineVoltage, 1.64);
  EXPECT_NEAR(fefet.writeEnergy, 4.82e-12, 0.5e-12);
  EXPECT_NEAR(fefet.readEnergy, 0.28e-12, 0.04e-12);
  EXPECT_NEAR(feram.writeEnergy, 15.0e-12, 1.5e-12);
  EXPECT_NEAR(feram.readEnergy, 15.5e-12, 1.6e-12);
}

TEST(MacroEnergy, AbstractHeadlineNumbers) {
  core::MacroEnergyModel model;
  // Paper abstract: write voltage 58.5% lower, write energy 67.7% lower.
  EXPECT_NEAR(model.writeVoltageReduction(), 0.585, 0.005);
  EXPECT_NEAR(model.writeEnergySavings(), 0.677, 0.05);
}

TEST(MacroEnergy, BreakdownStringsPresent) {
  core::MacroEnergyModel model;
  EXPECT_NE(model.fefet().breakdown.find("WSacc"), std::string::npos);
  EXPECT_NE(model.feram().breakdown.find("WL"), std::string::npos);
}

TEST(MacroEnergy, ScalesWithArrayGeometry) {
  core::MacroConfig small;
  small.rows = 64;
  small.cols = 64;
  core::MacroEnergyModel bigModel;
  core::MacroEnergyModel smallModel(small);
  EXPECT_LT(smallModel.fefet().writeEnergy, bigModel.fefet().writeEnergy);
  EXPECT_LT(smallModel.feram().writeEnergy, bigModel.feram().writeEnergy);
}

TEST(DesignSpace, ThicknessSweepReproducesSection3) {
  core::FefetParams base;
  base.lk = core::fefetMaterial();
  const auto points = core::sweepThickness(
      base, {1.0e-9, 1.5e-9, 1.9e-9, 2.25e-9, 2.5e-9});
  ASSERT_EQ(points.size(), 5u);
  EXPECT_FALSE(points[0].hysteretic);   // 1.0 nm
  EXPECT_FALSE(points[2].nonvolatile);  // 1.9 nm: volatile hysteresis
  EXPECT_TRUE(points[2].hysteretic);
  EXPECT_TRUE(points[3].nonvolatile);   // 2.25 nm: the design point
  EXPECT_GT(points[3].onOffRatio, 1e5);
  // Standalone coercive voltage grows linearly with thickness.
  EXPECT_NEAR(points[0].standaloneCoerciveVoltage, 1.244, 0.01);
  EXPECT_NEAR(points[4].standaloneCoerciveVoltage, 3.11, 0.02);
}

TEST(DesignSpace, RecommendsThePaperThickness) {
  core::FefetParams base;
  base.lk = core::fefetMaterial();
  const double t = core::recommendThickness(base, 0.68, 0.1);
  EXPECT_GT(t, 2.05e-9);
  EXPECT_LT(t, 2.45e-9);
}

TEST(DesignSpace, RetentionComparisonMatchesPaperNarrative) {
  core::FefetParams base;
  base.lk = core::fefetMaterial();
  const auto cmp = core::compareRetention(base, 1.244, 65e-9 * 45e-9);
  // FERAM reference calibrated to ten years.
  EXPECT_NEAR(cmp.feramLog10Seconds, std::log10(10 * 365.25 * 24 * 3600.0),
              0.01);
  // FEFET at the same size retains less (paper §6.2.4)...
  EXPECT_LT(cmp.fefetLog10Seconds, cmp.feramLog10Seconds);
  // ...and a width increase restores parity; the paper suggests 112.5 nm,
  // our measured window gives the same order of magnitude.
  EXPECT_GT(cmp.fefetWidthForParity, 65e-9);
  EXPECT_LT(cmp.fefetWidthForParity, 65e-9 * 10.0);
}

}  // namespace
}  // namespace fefet
