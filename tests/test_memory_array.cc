// Tests of the 2xN / NxN FEFET array with the Table 1 bias scheme
// (paper Fig. 7): selective access, unaccessed-cell isolation, sneak
// currents and half-select safety.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/bias_scheme.h"
#include "core/memory_array.h"
#include "core/memory_controller.h"

namespace fefet::core {
namespace {

ArrayConfig smallArray() {
  ArrayConfig cfg;  // 2x3 like the paper's Fig. 7
  return cfg;
}

TEST(BiasScheme, MatchesPaperTable1) {
  BiasLevels levels;
  const auto wAcc = biasFor(ArrayOp::kWrite, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(wAcc.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(wAcc.writeSelect, levels.writeBoost);
  EXPECT_DOUBLE_EQ(wAcc.bitLine, levels.vWrite);
  EXPECT_DOUBLE_EQ(wAcc.senseLine, 0.0);

  const auto wAccZero =
      biasFor(ArrayOp::kWrite, RowKind::kAccessed, levels, false);
  EXPECT_DOUBLE_EQ(wAccZero.bitLine, -levels.vWrite);

  const auto wUn = biasFor(ArrayOp::kWrite, RowKind::kUnaccessed, levels);
  EXPECT_DOUBLE_EQ(wUn.writeSelect, -levels.vdd);

  const auto rAcc = biasFor(ArrayOp::kRead, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(rAcc.readSelect, levels.vRead);
  EXPECT_DOUBLE_EQ(rAcc.writeSelect, levels.vdd);
  EXPECT_DOUBLE_EQ(rAcc.bitLine, 0.0);

  const auto rUn = biasFor(ArrayOp::kRead, RowKind::kUnaccessed, levels);
  EXPECT_DOUBLE_EQ(rUn.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(rUn.writeSelect, 0.0);

  const auto hold = biasFor(ArrayOp::kHold, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(hold.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(hold.writeSelect, 0.0);
  EXPECT_DOUBLE_EQ(hold.bitLine, 0.0);
  EXPECT_DOUBLE_EQ(hold.senseLine, 0.0);

  const std::string table = describeBiasTable(levels);
  EXPECT_NE(table.find("Unaccessed"), std::string::npos);
  EXPECT_NE(table.find("-0.68"), std::string::npos);
}

TEST(MemoryArray, PatternSetAndReadBack) {
  MemoryArray arr(smallArray());
  const std::vector<std::vector<bool>> pattern = {{true, false, true},
                                                  {false, true, false}};
  arr.setPattern(pattern);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(arr.bitAt(r, c), pattern[r][c]) << r << "," << c;
    }
  }
}

TEST(MemoryArray, WriteEveryCellIndividually) {
  MemoryArray arr(smallArray());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto res = arr.writeBit(r, c, true);
      EXPECT_TRUE(res.ok) << r << "," << c;
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_TRUE(arr.bitAt(r, c));
    }
  }
}

TEST(MemoryArray, WritePreservesNeighbours) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto res = arr.writeBit(0, 1, true);
  EXPECT_TRUE(res.ok);
  // All other cells unchanged.
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_TRUE(arr.bitAt(0, 2));
  EXPECT_FALSE(arr.bitAt(1, 0));
  EXPECT_TRUE(arr.bitAt(1, 1));
  EXPECT_FALSE(arr.bitAt(1, 2));
  // Quantified disturb: well below the state separation (~0.22 C/m^2).
  EXPECT_LT(res.maxUnaccessedDisturb, 0.03);
}

TEST(MemoryArray, HalfSelectSafety) {
  // Writing one column must not flip same-row cells on other columns even
  // after repeated writes (their gates see 0 V, inside the window).
  MemoryArray arr(smallArray());
  arr.setPattern({{false, true, false}, {false, false, false}});
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(arr.writeBit(0, 0, k % 2 == 0).ok);
  }
  EXPECT_TRUE(arr.bitAt(0, 1));
  EXPECT_FALSE(arr.bitAt(0, 2));
}

TEST(MemoryArray, NegativeSelectIsolatesUnaccessedRows) {
  // Paper §4.1: unaccessed WS at -VDD keeps access transistors off even
  // with the bit line at -V_write.  Writing 0 repeatedly into row 0 must
  // not leak into row 1 of the same column.
  MemoryArray arr(smallArray());
  arr.setPattern({{true, true, true}, {true, true, true}});
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(arr.writeBit(0, 0, false).ok);
    EXPECT_TRUE(arr.writeBit(0, 0, true).ok);
  }
  EXPECT_TRUE(arr.bitAt(1, 0));
}

TEST(MemoryArray, ReadBackPattern) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto res = arr.readBit(r, c);
      EXPECT_TRUE(res.ok) << r << "," << c;
      EXPECT_EQ(res.bitRead, arr.bitAt(r, c));
    }
  }
}

TEST(MemoryArray, ReadCurrentsSeparated) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, false}, {false, false, false}});
  const double i1 = arr.readBit(0, 0).readCurrent;
  const double i0 = arr.readBit(0, 1).readCurrent;
  EXPECT_GT(i1, 1e-5);
  EXPECT_LT(i0, 1e-7);
}

TEST(MemoryArray, SneakCurrentsEliminated) {
  // Paper: fixed-voltage (virtual ground) sensing eliminates sneak paths.
  // During a read, unaccessed sense lines and read-select lines carry only
  // leakage-level current.
  MemoryArray arr(smallArray());
  arr.setPattern({{true, true, true}, {true, true, true}});  // worst case
  const auto res = arr.readBit(0, 1);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.maxSneakCurrent, 2e-6);  // vs the ~200 uA read current
}

TEST(MemoryArray, ReadDoesNotDisturbArray) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto before = arr.polarizations();
  for (int k = 0; k < 3; ++k) arr.readBit(0, 0);
  const auto after = arr.polarizations();
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(after[r][c], before[r][c], 0.05) << r << "," << c;
    }
  }
}

TEST(MemoryArray, HoldIsQuiet) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto res = arr.hold(5e-9);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.maxUnaccessedDisturb, 1e-3);
  EXPECT_LT(res.totalEnergy, 1e-15);  // zero standby claim
}

TEST(MemoryArray, RejectsBadIndices) {
  MemoryArray arr(smallArray());
  EXPECT_THROW(arr.writeBit(2, 0, true), InvalidArgumentError);
  EXPECT_THROW(arr.readBit(0, 3), InvalidArgumentError);
  EXPECT_THROW(arr.setPattern({{true}}), InvalidArgumentError);
}

// Property sweep over array shapes: every corner cell is writable and
// readable without disturbing the opposite corner.
struct Shape {
  int rows, cols;
};
class ArrayShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(ArrayShapes, CornerAccessPreservesOppositeCorner) {
  ArrayConfig cfg;
  cfg.rows = GetParam().rows;
  cfg.cols = GetParam().cols;
  MemoryArray arr(cfg);
  std::vector<std::vector<bool>> pattern(
      cfg.rows, std::vector<bool>(cfg.cols, false));
  pattern[cfg.rows - 1][cfg.cols - 1] = true;
  arr.setPattern(pattern);
  EXPECT_TRUE(arr.writeBit(0, 0, true).ok);
  EXPECT_TRUE(arr.readBit(0, 0).bitRead);
  EXPECT_TRUE(arr.bitAt(cfg.rows - 1, cfg.cols - 1));
  EXPECT_TRUE(arr.readBit(cfg.rows - 1, cfg.cols - 1).bitRead);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ArrayShapes,
                         ::testing::Values(Shape{1, 2}, Shape{2, 2},
                                           Shape{2, 3}, Shape{4, 4}));

// --- fault injection & the resilient word path ---------------------------

TEST(MemoryArrayFaults, StuckCellsArePinnedThroughWrites) {
  ArrayConfig cfg;
  cfg.faults.stuckAtOneRate = 1.0;
  MemoryArray arr(cfg);
  arr.setPattern({{false, false, false}, {false, false, false}});
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_TRUE(arr.bitAt(r, c)) << r << "," << c;
  }
  const auto res = arr.writeBit(0, 0, false);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.faultInjected);
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_EQ(arr.faultAt(0, 0), CellFault::kStuckAtOne);
}

TEST(MemoryArrayFaults, TransientWriteFailureReverts) {
  ArrayConfig cfg;
  cfg.faults.writeFailureProbability = 1.0;  // every pulse fails
  MemoryArray arr(cfg);
  arr.setPattern({{false, false, false}, {false, false, false}});
  const auto res = arr.writeBit(0, 1, true);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.faultInjected);
  EXPECT_FALSE(arr.bitAt(0, 1));
}

TEST(MemoryArrayFaults, RetentionDecayRelaxesTowardTheBoundary) {
  ArrayConfig cfg;
  cfg.faults.retentionDecayPerSecond = 5e7;  // visible on an ns-scale hold
  MemoryArray arr(cfg);
  const std::vector<std::vector<bool>> pattern = {{true, false, true},
                                                  {false, true, false}};
  arr.setPattern(pattern);
  const auto before = arr.polarizations();
  const auto res = arr.hold(5e-9);
  EXPECT_TRUE(res.faultInjected);
  const auto after = arr.polarizations();
  // Both states relax toward the saddle, so the window shrinks — but the
  // stored bits survive this decay level.
  double maxBefore = -1e9, minBefore = 1e9;
  double maxAfter = -1e9, minAfter = 1e9;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(arr.bitAt(r, c), pattern[r][c]) << r << "," << c;
      maxBefore = std::max(maxBefore, before[r][c]);
      minBefore = std::min(minBefore, before[r][c]);
      maxAfter = std::max(maxAfter, after[r][c]);
      minAfter = std::min(minAfter, after[r][c]);
    }
  }
  EXPECT_LT(maxAfter - minAfter, maxBefore - minBefore);
}

TEST(ControllerResilience, WriteVerifyRetryAbsorbsTransientFailures) {
  ArrayConfig cfg;
  cfg.rows = 1;
  cfg.cols = 8;
  cfg.faults.writeFailureProbability = 0.4;
  cfg.faults.seed = 2;
  ControllerConfig cc;
  cc.wordWidth = 4;
  cc.eccEnabled = true;  // (8,4) SECDED fills the 8 columns
  cc.spareRows = 0;
  cc.retry.maxRetries = 4;
  MemoryController ctrl(cfg, cc);
  EXPECT_EQ(ctrl.bitsPerWord(), 8);
  EXPECT_TRUE(ctrl.writeWord(0, 0, 0xB));
  EXPECT_EQ(ctrl.readWord(0, 0), 0xBu);
  const auto& report = ctrl.report();
  EXPECT_GT(report.writeRetries, 0);
  EXPECT_GT(report.retryEnergy, 0.0);
  EXPECT_EQ(report.uncorrectedBits, 0);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ControllerResilience, StuckCellForcesRowRemapToSpare) {
  // Find a seed whose fault map has a stuck-at-zero cell in row 0 and
  // clean rows 1..2 (the map is a pure hash, so this probe is cheap and
  // exactly matches what the array will instantiate).
  FaultSpec spec;
  spec.stuckAtZeroRate = 0.08;
  bool found = false;
  for (std::uint64_t seed = 1; seed < 500 && !found; ++seed) {
    spec.seed = seed;
    FaultInjector probe(spec);
    bool stuckInRow0 = false, cleanElsewhere = true;
    for (int c = 0; c < 4; ++c) {
      if (probe.cellFault(0, c) == CellFault::kStuckAtZero) {
        stuckInRow0 = true;
      }
      for (int r = 1; r < 3; ++r) {
        if (probe.cellFault(r, c) != CellFault::kNone) cleanElsewhere = false;
      }
    }
    found = stuckInRow0 && cleanElsewhere;
  }
  ASSERT_TRUE(found);

  ArrayConfig cfg;
  cfg.rows = 3;  // 2 logical + 1 spare
  cfg.cols = 4;
  cfg.faults = spec;
  ControllerConfig cc;
  cc.wordWidth = 4;
  cc.eccEnabled = false;
  cc.spareRows = 1;
  cc.retry.maxRetries = 1;
  MemoryController ctrl(cfg, cc);
  EXPECT_EQ(ctrl.rows(), 2);
  // All-ones collides with the stuck-at-zero cell: retries cannot fix a
  // dead cell, so the row is retired to the spare.
  EXPECT_TRUE(ctrl.writeWord(0, 0, 0xF));
  EXPECT_EQ(ctrl.report().remappedRows, 1);
  EXPECT_EQ(ctrl.readWord(0, 0), 0xFu);
  EXPECT_EQ(ctrl.report().uncorrectedBits, 0);
  // The other logical row still writes in place.
  EXPECT_TRUE(ctrl.writeWord(1, 0, 0x5));
  EXPECT_EQ(ctrl.readWord(1, 0), 0x5u);
  EXPECT_EQ(ctrl.report().remappedRows, 1);
}

TEST(ControllerResilience, EccCorrectsAStuckBitOnRead) {
  // Exactly one stuck-at-zero cell in the word, no retries, no spares:
  // the write leaves one wrong bit and SECDED absorbs it on read.
  FaultSpec spec;
  spec.stuckAtZeroRate = 0.05;
  int stuckCol = -1;
  for (std::uint64_t seed = 1; seed < 1000 && stuckCol < 0; ++seed) {
    spec.seed = seed;
    FaultInjector probe(spec);
    int count = 0, where = -1;
    for (int c = 0; c < 8; ++c) {
      if (probe.cellFault(0, c) == CellFault::kStuckAtZero) {
        ++count;
        where = c;
      }
    }
    if (count == 1) stuckCol = where;
  }
  ASSERT_GE(stuckCol, 0);
  // Pick a data word whose codeword carries a 1 in the stuck column.
  SecdedCodec codec(4);
  std::uint32_t value = 0;
  for (std::uint32_t v = 1; v < 16; ++v) {
    const std::uint64_t image =
        v | (static_cast<std::uint64_t>(codec.encode(v)) << 4);
    if ((image >> stuckCol) & 1u) {
      value = v;
      break;
    }
  }
  ASSERT_NE(value, 0u);

  ArrayConfig cfg;
  cfg.rows = 1;
  cfg.cols = 8;
  cfg.faults = spec;
  ControllerConfig cc;
  cc.wordWidth = 4;
  cc.eccEnabled = true;
  cc.spareRows = 0;
  cc.retry.maxRetries = 0;
  MemoryController ctrl(cfg, cc);
  EXPECT_FALSE(ctrl.writeWord(0, 0, value));  // the stuck bit never lands
  EXPECT_GE(ctrl.report().uncorrectedBits, 1);
  EXPECT_EQ(ctrl.readWord(0, 0), value);  // ...but ECC recovers the data
  EXPECT_GE(ctrl.report().correctedBits, 1);
}

}  // namespace
}  // namespace fefet::core
