// Tests of the 2xN / NxN FEFET array with the Table 1 bias scheme
// (paper Fig. 7): selective access, unaccessed-cell isolation, sneak
// currents and half-select safety.
#include <gtest/gtest.h>

#include "core/bias_scheme.h"
#include "core/memory_array.h"

namespace fefet::core {
namespace {

ArrayConfig smallArray() {
  ArrayConfig cfg;  // 2x3 like the paper's Fig. 7
  return cfg;
}

TEST(BiasScheme, MatchesPaperTable1) {
  BiasLevels levels;
  const auto wAcc = biasFor(ArrayOp::kWrite, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(wAcc.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(wAcc.writeSelect, levels.writeBoost);
  EXPECT_DOUBLE_EQ(wAcc.bitLine, levels.vWrite);
  EXPECT_DOUBLE_EQ(wAcc.senseLine, 0.0);

  const auto wAccZero =
      biasFor(ArrayOp::kWrite, RowKind::kAccessed, levels, false);
  EXPECT_DOUBLE_EQ(wAccZero.bitLine, -levels.vWrite);

  const auto wUn = biasFor(ArrayOp::kWrite, RowKind::kUnaccessed, levels);
  EXPECT_DOUBLE_EQ(wUn.writeSelect, -levels.vdd);

  const auto rAcc = biasFor(ArrayOp::kRead, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(rAcc.readSelect, levels.vRead);
  EXPECT_DOUBLE_EQ(rAcc.writeSelect, levels.vdd);
  EXPECT_DOUBLE_EQ(rAcc.bitLine, 0.0);

  const auto rUn = biasFor(ArrayOp::kRead, RowKind::kUnaccessed, levels);
  EXPECT_DOUBLE_EQ(rUn.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(rUn.writeSelect, 0.0);

  const auto hold = biasFor(ArrayOp::kHold, RowKind::kAccessed, levels);
  EXPECT_DOUBLE_EQ(hold.readSelect, 0.0);
  EXPECT_DOUBLE_EQ(hold.writeSelect, 0.0);
  EXPECT_DOUBLE_EQ(hold.bitLine, 0.0);
  EXPECT_DOUBLE_EQ(hold.senseLine, 0.0);

  const std::string table = describeBiasTable(levels);
  EXPECT_NE(table.find("Unaccessed"), std::string::npos);
  EXPECT_NE(table.find("-0.68"), std::string::npos);
}

TEST(MemoryArray, PatternSetAndReadBack) {
  MemoryArray arr(smallArray());
  const std::vector<std::vector<bool>> pattern = {{true, false, true},
                                                  {false, true, false}};
  arr.setPattern(pattern);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(arr.bitAt(r, c), pattern[r][c]) << r << "," << c;
    }
  }
}

TEST(MemoryArray, WriteEveryCellIndividually) {
  MemoryArray arr(smallArray());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto res = arr.writeBit(r, c, true);
      EXPECT_TRUE(res.ok) << r << "," << c;
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_TRUE(arr.bitAt(r, c));
    }
  }
}

TEST(MemoryArray, WritePreservesNeighbours) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto res = arr.writeBit(0, 1, true);
  EXPECT_TRUE(res.ok);
  // All other cells unchanged.
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_TRUE(arr.bitAt(0, 2));
  EXPECT_FALSE(arr.bitAt(1, 0));
  EXPECT_TRUE(arr.bitAt(1, 1));
  EXPECT_FALSE(arr.bitAt(1, 2));
  // Quantified disturb: well below the state separation (~0.22 C/m^2).
  EXPECT_LT(res.maxUnaccessedDisturb, 0.03);
}

TEST(MemoryArray, HalfSelectSafety) {
  // Writing one column must not flip same-row cells on other columns even
  // after repeated writes (their gates see 0 V, inside the window).
  MemoryArray arr(smallArray());
  arr.setPattern({{false, true, false}, {false, false, false}});
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(arr.writeBit(0, 0, k % 2 == 0).ok);
  }
  EXPECT_TRUE(arr.bitAt(0, 1));
  EXPECT_FALSE(arr.bitAt(0, 2));
}

TEST(MemoryArray, NegativeSelectIsolatesUnaccessedRows) {
  // Paper §4.1: unaccessed WS at -VDD keeps access transistors off even
  // with the bit line at -V_write.  Writing 0 repeatedly into row 0 must
  // not leak into row 1 of the same column.
  MemoryArray arr(smallArray());
  arr.setPattern({{true, true, true}, {true, true, true}});
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(arr.writeBit(0, 0, false).ok);
    EXPECT_TRUE(arr.writeBit(0, 0, true).ok);
  }
  EXPECT_TRUE(arr.bitAt(1, 0));
}

TEST(MemoryArray, ReadBackPattern) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto res = arr.readBit(r, c);
      EXPECT_TRUE(res.ok) << r << "," << c;
      EXPECT_EQ(res.bitRead, arr.bitAt(r, c));
    }
  }
}

TEST(MemoryArray, ReadCurrentsSeparated) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, false}, {false, false, false}});
  const double i1 = arr.readBit(0, 0).readCurrent;
  const double i0 = arr.readBit(0, 1).readCurrent;
  EXPECT_GT(i1, 1e-5);
  EXPECT_LT(i0, 1e-7);
}

TEST(MemoryArray, SneakCurrentsEliminated) {
  // Paper: fixed-voltage (virtual ground) sensing eliminates sneak paths.
  // During a read, unaccessed sense lines and read-select lines carry only
  // leakage-level current.
  MemoryArray arr(smallArray());
  arr.setPattern({{true, true, true}, {true, true, true}});  // worst case
  const auto res = arr.readBit(0, 1);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.maxSneakCurrent, 2e-6);  // vs the ~200 uA read current
}

TEST(MemoryArray, ReadDoesNotDisturbArray) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto before = arr.polarizations();
  for (int k = 0; k < 3; ++k) arr.readBit(0, 0);
  const auto after = arr.polarizations();
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(after[r][c], before[r][c], 0.05) << r << "," << c;
    }
  }
}

TEST(MemoryArray, HoldIsQuiet) {
  MemoryArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto res = arr.hold(5e-9);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.maxUnaccessedDisturb, 1e-3);
  EXPECT_LT(res.totalEnergy, 1e-15);  // zero standby claim
}

TEST(MemoryArray, RejectsBadIndices) {
  MemoryArray arr(smallArray());
  EXPECT_THROW(arr.writeBit(2, 0, true), InvalidArgumentError);
  EXPECT_THROW(arr.readBit(0, 3), InvalidArgumentError);
  EXPECT_THROW(arr.setPattern({{true}}), InvalidArgumentError);
}

// Property sweep over array shapes: every corner cell is writable and
// readable without disturbing the opposite corner.
struct Shape {
  int rows, cols;
};
class ArrayShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(ArrayShapes, CornerAccessPreservesOppositeCorner) {
  ArrayConfig cfg;
  cfg.rows = GetParam().rows;
  cfg.cols = GetParam().cols;
  MemoryArray arr(cfg);
  std::vector<std::vector<bool>> pattern(
      cfg.rows, std::vector<bool>(cfg.cols, false));
  pattern[cfg.rows - 1][cfg.cols - 1] = true;
  arr.setPattern(pattern);
  EXPECT_TRUE(arr.writeBit(0, 0, true).ok);
  EXPECT_TRUE(arr.readBit(0, 0).bitRead);
  EXPECT_TRUE(arr.bitAt(cfg.rows - 1, cfg.cols - 1));
  EXPECT_TRUE(arr.readBit(cfg.rows - 1, cfg.cols - 1).bitRead);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ArrayShapes,
                         ::testing::Values(Shape{1, 2}, Shape{2, 2},
                                           Shape{2, 3}, Shape{4, 4}));

}  // namespace
}  // namespace fefet::core
