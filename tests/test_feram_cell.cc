// Tests of the 1T-1C FERAM baseline (paper §6.1, Fig. 9): writes, the
// destructive read with write-back, and the 550 ps / 1.64 V anchor.
#include <cmath>
#include <gtest/gtest.h>

#include "core/feram_cell.h"
#include "core/materials.h"

namespace fefet::core {
namespace {

FeRamConfig defaultConfig() {
  FeRamConfig cfg;
  cfg.lk = feramMaterial();
  return cfg;
}

TEST(FeRam, WriteOneAtPaperAnchor) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(false);
  const auto r = cell.write(true, 600e-12);
  EXPECT_TRUE(r.bitAfter);
  EXPECT_GT(r.finalPolarization, 0.3);
}

TEST(FeRam, WriteZeroAtPaperAnchor) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(true);
  const auto r = cell.write(false, 600e-12);
  EXPECT_FALSE(r.bitAfter);
  EXPECT_LT(r.finalPolarization, -0.3);
}

TEST(FeRam, MinimumWritePulseMatchesCalibration) {
  FeRamCell cell(defaultConfig());
  const double t1 = cell.minimumWritePulse(true, 1.64);
  const double t0 = cell.minimumWritePulse(false, 1.64);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t0, 0.0);
  EXPECT_NEAR(std::max(t1, t0), 550e-12, 40e-12);
}

TEST(FeRam, SubCoerciveWriteFails) {
  FeRamCell cell(defaultConfig());
  // 1.0 V is below the 1.24 V film coercive voltage: no flip, ever.
  EXPECT_LT(cell.minimumWritePulse(true, 1.0, 2e-9), 0.0);
}

TEST(FeRam, ReadSensesOne) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(true);
  const auto r = cell.read();
  EXPECT_TRUE(r.bitRead);
  EXPECT_GT(r.bitLineSwing, cell.config().senseThreshold);
}

TEST(FeRam, ReadSensesZero) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(false);
  const auto r = cell.read();
  EXPECT_FALSE(r.bitRead);
  EXPECT_LT(r.bitLineSwing, cell.config().senseThreshold);
}

TEST(FeRam, ReadIsDestructiveButRestored) {
  // The plate pulse flips a stored '1' (that is what develops the bit-line
  // signal); the automatic write-back restores it.
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(true);
  const double p0 = cell.polarization();
  ASSERT_GT(p0, 0.0);
  const auto r = cell.read();
  // During the sense phase the polarization must have swung negative: the
  // final waveform of the sense phase ends pre-restore.
  const auto pTrace = r.waveform.column("P(Cfe)");
  double pMin = p0;
  for (double p : pTrace) pMin = std::min(pMin, p);
  EXPECT_LT(pMin, 0.0) << "read did not disturb the cell: not destructive?";
  // ...and the write-back brought it home.
  EXPECT_TRUE(r.bitAfter);
  EXPECT_NEAR(cell.polarization(), p0, 0.15 * std::abs(p0));
}

TEST(FeRam, ReadCostsMoreForOneThanZero) {
  // '1' reads switch the cell twice (sense + restore): more energy.
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(true);
  const double e1 = cell.read().totalEnergy;
  cell.setStoredBit(false);
  const double e0 = cell.read().totalEnergy;
  EXPECT_GT(e1, e0);
}

TEST(FeRam, SenseMarginBetweenStates) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(true);
  const double swing1 = cell.read().bitLineSwing;
  cell.setStoredBit(false);
  const double swing0 = cell.read().bitLineSwing;
  EXPECT_GT(swing1 - swing0, 0.2);  // healthy margin around the threshold
}

TEST(FeRam, HoldRetainsBothStates) {
  FeRamCell cell(defaultConfig());
  for (bool bit : {true, false}) {
    cell.setStoredBit(bit);
    const auto r = cell.hold(50e-9);
    EXPECT_EQ(r.bitAfter, bit);
  }
}

TEST(FeRam, WriteEnergyScalesWithVoltage) {
  FeRamCell cell(defaultConfig());
  cell.setStoredBit(false);
  const double eLow = cell.write(true, 1.2e-9, 1.64).totalEnergy;
  cell.setStoredBit(false);
  const double eHigh = cell.write(true, 1.2e-9, 2.0).totalEnergy;
  EXPECT_GT(eHigh, eLow);
}

TEST(FeRam, OverwriteCycles) {
  FeRamCell cell(defaultConfig());
  bool bit = false;
  for (int i = 0; i < 6; ++i) {
    bit = !bit;
    const auto r = cell.write(bit, 800e-12);
    EXPECT_EQ(r.bitAfter, bit) << "cycle " << i;
  }
}

// Property sweep: read-after-write correctness over both data values and
// several write voltages.
struct Case {
  bool one;
  double voltage;
};
class ReadAfterWrite : public ::testing::TestWithParam<Case> {};

TEST_P(ReadAfterWrite, SensedValueMatchesWritten) {
  FeRamCell cell(defaultConfig());
  const auto [one, voltage] = GetParam();
  cell.setStoredBit(!one);
  const auto w = cell.write(one, 1.5e-9, voltage);
  ASSERT_EQ(w.bitAfter, one);
  const auto r = cell.read();
  EXPECT_EQ(r.bitRead, one);
  EXPECT_EQ(r.bitAfter, one);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ReadAfterWrite,
                         ::testing::Values(Case{true, 1.64}, Case{true, 2.0},
                                           Case{false, 1.64},
                                           Case{false, 2.0}));

}  // namespace
}  // namespace fefet::core
