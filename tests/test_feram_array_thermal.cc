// Tests of the FERAM array (row-granular access) and the thermal model.
#include <cmath>
#include <gtest/gtest.h>

#include "core/feram_array.h"
#include "core/fefet.h"
#include "core/materials.h"
#include "ferro/thermal.h"

namespace fefet {
namespace {

core::FeRamArrayConfig smallArray() {
  core::FeRamArrayConfig cfg;
  cfg.cell.lk = core::feramMaterial();
  return cfg;
}

TEST(FeRamArray, PatternRoundTrip) {
  core::FeRamArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_FALSE(arr.bitAt(0, 1));
  EXPECT_TRUE(arr.bitAt(1, 1));
}

TEST(FeRamArray, WriteRowSetsAllColumns) {
  core::FeRamArray arr(smallArray());
  const auto res = arr.writeRow(0, {true, true, false});
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_TRUE(arr.bitAt(0, 1));
  EXPECT_FALSE(arr.bitAt(0, 2));
}

TEST(FeRamArray, WriteRowLeavesOtherRowsAlone) {
  core::FeRamArray arr(smallArray());
  arr.setPattern({{false, false, false}, {true, false, true}});
  EXPECT_TRUE(arr.writeRow(0, {true, true, true}).ok);
  EXPECT_TRUE(arr.bitAt(1, 0));
  EXPECT_FALSE(arr.bitAt(1, 1));
  EXPECT_TRUE(arr.bitAt(1, 2));
}

TEST(FeRamArray, ReadRowSensesAndRestores) {
  core::FeRamArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, false, false}});
  const auto res = arr.readRow(0);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.bitsRead.size(), 3u);
  EXPECT_TRUE(res.bitsRead[0]);
  EXPECT_FALSE(res.bitsRead[1]);
  EXPECT_TRUE(res.bitsRead[2]);
  // Restored after the destructive read.
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_FALSE(arr.bitAt(0, 1));
  EXPECT_TRUE(arr.bitAt(0, 2));
}

TEST(FeRamArray, UpdateBitIsRowGranularButCorrect) {
  core::FeRamArray arr(smallArray());
  arr.setPattern({{true, false, true}, {false, true, false}});
  const auto res = arr.updateBit(0, 1, true);
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(arr.bitAt(0, 0));
  EXPECT_TRUE(arr.bitAt(0, 1));
  EXPECT_TRUE(arr.bitAt(0, 2));
  // Row-granularity makes it far costlier than a single-cell write.
  core::FeRamCell cell(smallArray().cell);
  cell.setStoredBit(false);
  const double oneCell = cell.write(true, 700e-12).totalEnergy;
  EXPECT_GT(res.totalEnergy, 3.0 * oneCell);
}

TEST(FeRamArray, RejectsBadArguments) {
  core::FeRamArray arr(smallArray());
  EXPECT_THROW(arr.writeRow(5, {true, true, true}), InvalidArgumentError);
  EXPECT_THROW(arr.writeRow(0, {true}), InvalidArgumentError);
  EXPECT_THROW(arr.updateBit(0, 9, true), InvalidArgumentError);
}

TEST(Thermal, CurieWeissScalesAlpha) {
  const auto base = core::fefetMaterial();
  const auto hot = ferro::atTemperature(base, 500.0);
  EXPECT_NEAR(hot.alpha, base.alpha * 0.5, std::abs(base.alpha) * 1e-9);
  const auto ref = ferro::atTemperature(base, 300.0);
  EXPECT_DOUBLE_EQ(ref.alpha, base.alpha);
  // Above the Curie point alpha turns positive: paraelectric.
  const auto para = ferro::atTemperature(base, 750.0);
  EXPECT_GT(para.alpha, 0.0);
  EXPECT_FALSE(ferro::LandauKhalatnikov(para).isFerroelectric());
}

TEST(Thermal, RemnantFractionFollowsSqrtLaw) {
  EXPECT_DOUBLE_EQ(ferro::remnantFractionAt(300.0), 1.0);
  EXPECT_NEAR(ferro::remnantFractionAt(500.0), std::sqrt(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(ferro::remnantFractionAt(700.0), 0.0);
  EXPECT_DOUBLE_EQ(ferro::remnantFractionAt(800.0), 0.0);
}

TEST(Thermal, PrAndEcShrinkTowardCurie) {
  const auto base = core::fefetMaterial();
  const ferro::LandauKhalatnikov cold(ferro::atTemperature(base, 300.0));
  const ferro::LandauKhalatnikov hot(ferro::atTemperature(base, 500.0));
  EXPECT_LT(hot.remnantPolarization(), cold.remnantPolarization());
  EXPECT_LT(hot.coerciveField(), cold.coerciveField());
}

TEST(Thermal, MemoryWindowShrinksWithTemperature) {
  core::FefetParams cold;
  cold.lk = core::fefetMaterial();
  core::FefetParams hot = cold;
  hot.lk = ferro::atTemperature(cold.lk, 380.0);
  const auto wCold = core::analyzeHysteresis(cold);
  const auto wHot = core::analyzeHysteresis(hot);
  ASSERT_TRUE(wCold.nonvolatile);
  EXPECT_LT(wHot.width(), wCold.width());
}

TEST(Thermal, ThicknessCompensatesHeat) {
  // At 400 K the 2.25 nm design is volatile; 2.8 nm restores the window.
  core::FefetParams hot;
  hot.lk = ferro::atTemperature(core::fefetMaterial(), 400.0);
  hot.feThickness = 2.25e-9;
  EXPECT_FALSE(core::analyzeHysteresis(hot).nonvolatile);
  hot.feThickness = 2.8e-9;
  EXPECT_TRUE(core::analyzeHysteresis(hot).nonvolatile);
}

TEST(Thermal, RejectsBadTemperatures) {
  EXPECT_THROW(ferro::atTemperature(core::fefetMaterial(), -1.0),
               InvalidArgumentError);
  ferro::ThermalParams bad;
  bad.curieTemperature = 200.0;
  EXPECT_THROW(ferro::atTemperature(core::fefetMaterial(), 300.0, bad),
               InvalidArgumentError);
}

}  // namespace
}  // namespace fefet
