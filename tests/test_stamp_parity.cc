// Stamp-parity suite: the compiled stamp pipeline (StampPattern +
// Assembler) must be bit-identical to the legacy virtual-dispatch
// MnaSystem oracle.
//
// Three layers of evidence:
//   1. Matrix-level parity: a zoo netlist containing every device type is
//      assembled by both engines at randomized Newton iterates, in all
//      three stamp modes (DC, transient BE, transient trapezoid), against
//      dense and sparse legacy storage — every Jacobian entry, residual
//      and row-scale value compared with exact (==) equality.
//   2. End-to-end waveform parity: a full 2T-cell write -> hold -> read
//      and a 200-stage RC ladder transient (sparse path, LU structure
//      reuse) run once per engine; timestep sequences and every probe
//      sample must match bit for bit.
//   3. Escalation parity: the gmin-continuation DC rescue lands on the
//      same operating point with the same iteration/level counts.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/cell2t.h"
#include "spice/assembler.h"
#include "spice/extras.h"
#include "spice/fecap_device.h"
#include "spice/mna.h"
#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "spice/stamp_pattern.h"
#include "xtor/mosfet_model.h"

namespace fefet::spice {
namespace {

ferro::LkCoefficients feMaterial() {
  ferro::LkCoefficients c;
  c.rho = 1.0;
  return c;
}

const ferro::FeGeometry kFeGeom{1e-9, 65e-9 * 45e-9};

// One of every device type, wired into a single connected circuit.  The
// point is stamp coverage, not physical plausibility.
void buildZoo(Netlist& n) {
  using shapes::dc;
  using shapes::pulse;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.2, 0.1e-9, 20e-12, 1e-9, 20e-12));
  n.add<Resistor>("R1", n.node("in"), n.node("mid"), 1e3);
  n.add<Capacitor>("C1", n.node("mid"), n.ground(), 2e-15);
  n.add<TimedSwitch>("S1", n.node("mid"), n.node("out"),
                     [](double t) { return t < 0.5e-9 ? 1.0 : 0.0; });
  n.add<CurrentSource>("I1", n.ground(), n.node("out"), dc(1e-6));
  n.add<Diode>("D1", n.node("out"), n.ground());
  n.add<Inductor>("L1", n.node("out"), n.node("tail"), 1e-9);
  n.add<Resistor>("R2", n.node("tail"), n.ground(), 5e3);
  n.add<Vcvs>("E1", n.node("e"), n.ground(), n.node("mid"), n.ground(), 2.0);
  n.add<Vccs>("G1", n.ground(), n.node("out"), n.node("e"), n.ground(), 1e-3);
  n.add<Resistor>("Rg", n.node("e"), n.node("gate"), 1e3);
  n.add<Resistor>("Rd", n.node("in"), n.node("drn"), 1e4);
  n.add<MosfetDevice>("M1", n.node("drn"), n.node("gate"), n.ground(),
                      xtor::nmos45(), 65e-9);
  const double pr =
      ferro::LandauKhalatnikov(feMaterial()).remnantPolarization();
  // backgroundEpsR > 0 exercises the FeCap linear-dielectric branch.
  n.add<FeCapDevice>("F1", n.node("gate"), n.ground(), feMaterial(), kFeGeom,
                     pr, 5.0);
}

struct Mode {
  const char* name;
  bool dc;
  double time;
  double dt;
  IntegrationMethod method;
};

const Mode kModes[] = {
    {"dc", true, 0.0, 0.0, IntegrationMethod::kBackwardEuler},
    {"be", false, 0.3e-9, 1e-12, IntegrationMethod::kBackwardEuler},
    {"trap", false, 0.3e-9, 1e-12, IntegrationMethod::kTrapezoidal},
};

// Assemble both engines at the same iterate and require exact equality of
// residual, row scale and every Jacobian entry.  The compiled CSR pattern
// is a superset of the legacy pattern (the legacy path drops exact-zero
// contributions), so compiled-only entries must carry 0.0 and legacy
// entries must all exist in the pattern.  With `batched` the compiled
// engine evaluates through the SoA device batches (type-major kernels,
// netlist-order scatter) — still required to be bit-identical.
void expectParityAtIterates(bool sparseLegacy, bool batched = false) {
  Netlist n;
  buildZoo(n);
  const int unknowns = n.freeze();
  const int nodes = n.nodeCount();
  ASSERT_GT(unknowns, 0);

  MnaSystem legacy(unknowns, sparseLegacy);
  Assembler compiled(n.stampPattern(), sparseLegacy);
  const StampPattern& pattern = n.stampPattern();
  const double gmin = 1e-10;

  std::mt19937_64 rng(20260807u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(static_cast<std::size_t>(unknowns), 0.0);
  for (const auto& device : n.devices()) device->seedUnknowns(x);

  for (int iterate = 0; iterate < 8; ++iterate) {
    // Perturb around the seed so aux unknowns (P, branch currents) stay in
    // a regime every model evaluates without clipping differently.
    for (auto& xi : x) xi += 0.25 * dist(rng);
    const SystemView view(x, nodes);

    for (const Mode& mode : kModes) {
      SCOPED_TRACE(std::string("mode=") + mode.name +
                   (sparseLegacy ? " legacy=sparse" : " legacy=dense") +
                   (batched ? " batched" : " scalar") +
                   " iterate=" + std::to_string(iterate));

      legacy.clear();
      EvalContext ctx{view,        mode.dc, mode.time, mode.dt,
                      mode.method, gmin,    nullptr,   &legacy};
      for (const auto& device : n.devices()) device->stamp(ctx);
      legacy.addGmin(gmin, view, nodes);

      compiled.assemble(n, view, mode.dc, mode.time, mode.dt, mode.method,
                        gmin, batched);

      const auto residual = compiled.residual();
      const auto rowScale = compiled.rowScale();
      for (int i = 0; i < unknowns; ++i) {
        const auto u = static_cast<std::size_t>(i);
        ASSERT_EQ(legacy.residual()[u], residual[u]) << "residual row " << i;
        ASSERT_EQ(legacy.rowScale()[u], rowScale[u]) << "rowScale row " << i;
      }

      const linalg::CsrView csr = compiled.csr();
      for (std::size_t r = 0; r < csr.n; ++r) {
        for (std::size_t p = csr.rowPtr[r]; p < csr.rowPtr[r + 1]; ++p) {
          const std::size_t c = csr.colIdx[p];
          double legacyValue = 0.0;
          if (sparseLegacy) {
            const auto& row = legacy.sparseMatrix().row(r);
            const auto it = row.find(c);
            if (it != row.end()) legacyValue = it->second;
          } else {
            legacyValue = legacy.denseMatrix().at(r, c);
          }
          ASSERT_EQ(legacyValue, csr.values[p]) << "J(" << r << "," << c
                                                << ")";
        }
      }
      // No legacy entry may fall outside the compiled pattern.
      for (std::size_t r = 0; r < csr.n; ++r) {
        if (sparseLegacy) {
          for (const auto& [c, v] : legacy.sparseMatrix().row(r)) {
            ASSERT_NE(pattern.csrIndex(static_cast<int>(r),
                                       static_cast<int>(c)),
                      StampPattern::npos)
                << "legacy-only entry J(" << r << "," << c << ")=" << v;
          }
        } else {
          for (std::size_t c = 0; c < csr.n; ++c) {
            if (pattern.csrIndex(static_cast<int>(r), static_cast<int>(c)) ==
                StampPattern::npos) {
              ASSERT_EQ(legacy.denseMatrix().at(r, c), 0.0)
                  << "legacy-only entry J(" << r << "," << c << ")";
            }
          }
        }
      }
    }
  }
}

TEST(StampParity, EveryDeviceMatchesDenseOracleAtRandomIterates) {
  expectParityAtIterates(/*sparseLegacy=*/false);
}

TEST(StampParity, EveryDeviceMatchesSparseOracleAtRandomIterates) {
  expectParityAtIterates(/*sparseLegacy=*/true);
}

// Same coverage (every device type x all three stamp modes x randomized
// iterates), but the compiled engine assembles through the SoA batch
// kernels.  The zoo includes the batched types (R, C, V, I, diode,
// MOSFET, FeCap) and the generic-fallback types (switch, inductor,
// VCVS, VCCS), so both dispatch paths and their interleaving run.
TEST(StampParity, BatchedKernelsMatchDenseOracleAtRandomIterates) {
  expectParityAtIterates(/*sparseLegacy=*/false, /*batched=*/true);
}

TEST(StampParity, BatchedKernelsMatchSparseOracleAtRandomIterates) {
  expectParityAtIterates(/*sparseLegacy=*/true, /*batched=*/true);
}

void expectWaveformsIdentical(const Waveform& a, const Waveform& b) {
  ASSERT_EQ(a.sampleCount(), b.sampleCount());
  const auto ta = a.time();
  const auto tb = b.time();
  for (std::size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i], tb[i]) << "timestep sequence diverged at " << i;
  }
  for (const auto& name : a.columnNames()) {
    ASSERT_TRUE(b.hasColumn(name));
    const auto ca = a.column(name);
    const auto cb = b.column(name);
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca[i], cb[i]) << name << " diverged at sample " << i;
    }
  }
}

// Long RC ladder: > kDenseToSparseCrossover unknowns, so this is the
// sparse-storage path with LU structure reuse — exactly the array-scale
// configuration the pipeline was built for.
TransientResult runLadder(bool compiledStamps, bool batchedKernels) {
  Netlist n;
  constexpr int kStages = 200;
  n.add<VoltageSource>("V1", n.node("s0"), n.ground(),
                       shapes::pulse(0.0, 1.0, 0.0, 50e-12, 1.0, 50e-12));
  for (int i = 0; i < kStages; ++i) {
    const auto a = n.node("s" + std::to_string(i));
    const auto b = n.node("s" + std::to_string(i + 1));
    n.add<Resistor>("R" + std::to_string(i), a, b, 100.0);
    n.add<Capacitor>("C" + std::to_string(i), b, n.ground(), 1e-15);
  }
  NewtonOptions newton;
  newton.useCompiledStamps = compiledStamps;
  newton.useBatchedKernels = batchedKernels;
  Simulator sim(n, newton);
  EXPECT_EQ(sim.newton().usesCompiledStamps(), compiledStamps);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2e-9;
  options.dtMax = 20e-12;
  return sim.runTransient(
      options, {Probe::v("s1"), Probe::v("s100"), Probe::v("s200")});
}

TEST(StampParity, LadderTransientIsBitIdenticalAcrossEngines) {
  // Three engines: legacy oracle, compiled-scalar, compiled-batched.
  const auto legacy = runLadder(false, false);
  const auto compiled = runLadder(true, false);
  const auto batched = runLadder(true, true);
  expectWaveformsIdentical(compiled.waveform, legacy.waveform);
  expectWaveformsIdentical(batched.waveform, legacy.waveform);
  EXPECT_EQ(compiled.stats.newtonIterations, legacy.stats.newtonIterations);
  EXPECT_EQ(compiled.stats.steps, legacy.stats.steps);
  EXPECT_EQ(batched.stats.newtonIterations, legacy.stats.newtonIterations);
  EXPECT_EQ(batched.stats.steps, legacy.stats.steps);
}

// Full 2T-cell write -> hold -> read: the FEFET gate stack (MOSFET +
// FeCap aux unknown) through pulse edges, dt control and state commits.
// Engine 0 = compiled + batched, engine 1 = compiled scalar, engine 2 =
// legacy oracle; all three must agree bit for bit.
TEST(StampParity, Cell2TWriteHoldReadIsBitIdenticalAcrossEngines) {
  core::CellOpResult ops[3][3];
  for (int engine = 0; engine < 3; ++engine) {
    core::Cell2TConfig config;
    config.newton.useCompiledStamps = engine < 2;
    config.newton.useBatchedKernels = engine == 0;
    core::Cell2T cell(config);
    cell.setStoredBit(false);
    ops[engine][0] = cell.write(true, 1e-9);
    ops[engine][1] = cell.hold(1e-9);
    ops[engine][2] = cell.read();
  }
  for (int engine = 0; engine < 2; ++engine) {
    for (int op = 0; op < 3; ++op) {
      SCOPED_TRACE("engine " + std::to_string(engine) + " op " +
                   std::to_string(op));
      expectWaveformsIdentical(ops[engine][op].waveform, ops[2][op].waveform);
      ASSERT_EQ(ops[engine][op].finalPolarization,
                ops[2][op].finalPolarization);
      ASSERT_EQ(ops[engine][op].bitAfter, ops[2][op].bitAfter);
      ASSERT_EQ(ops[engine][op].readCurrent, ops[2][op].readCurrent);
      ASSERT_EQ(ops[engine][op].totalEnergy, ops[2][op].totalEnergy);
    }
  }
}

// ---------------------------------------------------------------------------
// SystemView node/aux indexing convention (audited in PR 7, see device.h):
// node i reads x[i - 1]; aux rows are ABSOLUTE indices >= nodeCount handed
// out by the AuxAllocator, read unshifted.  A mixed node/aux iterate run
// through a real assembly pins the convention end to end.
TEST(StampParity, MixedNodeAuxIterateFollowsRowConvention) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), shapes::dc(1.0));
  n.add<Resistor>("R1", n.node("in"), n.ground(), 1e3);
  const int unknowns = n.freeze();
  ASSERT_EQ(n.nodeCount(), 1);   // "in"
  ASSERT_EQ(unknowns, 2);        // + the source's branch-current aux
  // The aux row is absolute: the allocator starts at nodeCount().
  ASSERT_EQ(n.auxLabels().size(), 1u);

  // Distinct values so a swapped read cannot cancel: node voltage 0.7 at
  // row 0, branch current 0.3 at (absolute) row 1.
  std::vector<double> x{0.7, 0.3};
  const SystemView view(x, n.nodeCount());
  EXPECT_EQ(view.nodeVoltage(n.node("in")), 0.7);   // node 1 -> x[0]
  EXPECT_EQ(view.nodeVoltage(kGround), 0.0);
  EXPECT_EQ(view.aux(1), 0.3);                      // absolute row, no shift

  // Assemble and check both rows land where the convention says:
  //   row 0 (KCL at "in"): resistor current v/R plus the branch current
  //   aux — 0.7/1e3 + 0.3;
  //   row 1 (source constraint): v(in) - 1.0 = -0.3.
  Assembler compiled(n.stampPattern(), /*useSparse=*/false);
  compiled.assemble(n, view, /*dc=*/true, 0.0, 0.0,
                    IntegrationMethod::kBackwardEuler, /*gmin=*/0.0,
                    /*useBatchedKernels=*/true);
  const auto residual = compiled.residual();
  ASSERT_EQ(residual.size(), 2u);
  EXPECT_EQ(residual[0], 0.7 / 1e3 + 0.3);
  EXPECT_EQ(residual[1], 0.7 - 1.0);
}

// Gmin continuation: the hard-start diode string must traverse the same
// escalation ladder and land on the same operating point in both engines.
TEST(StampParity, GminContinuationIsBitIdenticalAcrossEngines) {
  double voltages[2][3];
  NewtonStats stats[2];
  for (int engine = 0; engine < 2; ++engine) {
    Netlist n;
    n.add<VoltageSource>("V1", n.node("top"), n.ground(), shapes::dc(3.0));
    n.add<Diode>("D1", n.node("top"), n.node("m1"));
    n.add<Diode>("D2", n.node("m1"), n.node("m2"));
    n.add<Diode>("D3", n.node("m2"), n.node("m3"));
    n.add<Diode>("D4", n.node("m3"), n.ground());
    n.add<Resistor>("Rload", n.node("m3"), n.ground(), 1e6);
    NewtonOptions newton;
    newton.useCompiledStamps = engine == 0;
    Simulator sim(n, newton);
    stats[engine] = sim.solveDc();
    voltages[engine][0] = sim.nodeVoltage("m1");
    voltages[engine][1] = sim.nodeVoltage("m2");
    voltages[engine][2] = sim.nodeVoltage("m3");
  }
  EXPECT_TRUE(stats[0].converged);
  EXPECT_TRUE(stats[1].converged);
  EXPECT_EQ(stats[0].iterations, stats[1].iterations);
  EXPECT_EQ(stats[0].gminEscalations, stats[1].gminEscalations);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(voltages[0][i], voltages[1][i]) << "node m" << (i + 1);
  }
}

// A device whose call sequence deviates from the recorded pattern must be
// caught by the per-device integrity check, not silently corrupt slots.
class ErraticDevice final : public Device {
 public:
  ErraticDevice(std::string name, NodeId a, bool* erratic)
      : Device(std::move(name)), a_(a), erratic_(erratic) {}

  void stamp(const EvalContext& ctx) override {
    const int row = a_ - 1;
    ctx.addResidual(row, 1e-9);
    ctx.addJacobian(row, row, 1e-9);
    if (*erratic_) ctx.addJacobian(row, row, 1e-9);  // extra call
  }

 private:
  NodeId a_;
  bool* erratic_;
};

TEST(StampParity, CallSequenceDeviationIsDiagnosedByName) {
  Netlist n;
  bool erratic = false;
  // The erratic device goes first so its extra call trips the per-device
  // count check (which names it) rather than the end-of-program guard.
  n.add<ErraticDevice>("X1", n.node("a"), &erratic);
  n.add<Resistor>("R1", n.node("a"), n.ground(), 1e3);
  n.freeze();
  Assembler compiled(n.stampPattern(), /*useSparse=*/false);
  std::vector<double> x(static_cast<std::size_t>(n.unknownCount()), 0.0);
  const SystemView view(x, n.nodeCount());
  compiled.assemble(n, view, true, 0.0, 0.0,
                    IntegrationMethod::kBackwardEuler, 0.0);  // in-pattern

  erratic = true;  // now emits one extra addJacobian vs the recording
  try {
    compiled.assemble(n, view, true, 0.0, 0.0,
                      IntegrationMethod::kBackwardEuler, 0.0);
    FAIL() << "deviating call sequence was not diagnosed";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("X1"), std::string::npos)
        << "diagnostic must name the culprit device: " << e.what();
  }
}

}  // namespace
}  // namespace fefet::spice
