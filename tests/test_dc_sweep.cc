// Tests of the swept-DC analysis with continuation — including
// circuit-level FEFET hysteresis extraction (up/down sweeps trace
// different branches) validated against the quasi-static analysis.
#include <cmath>
#include <gtest/gtest.h>

#include "core/fefet.h"
#include "core/materials.h"
#include "spice/dc_sweep.h"
#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/sources.h"

namespace fefet::spice {
namespace {

using shapes::dc;

TEST(DcSweep, LinearDividerScalesWithInput) {
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(0.0));
  n.add<Resistor>("R1", n.node("in"), n.node("mid"), 1e3);
  n.add<Resistor>("R2", n.node("mid"), n.ground(), 1e3);
  Simulator sim(n);
  const auto result = dcSweep(sim, *v, 0.0, 2.0, 10, {Probe::v("mid")});
  ASSERT_EQ(result.sweepValues.size(), 11u);
  for (std::size_t i = 0; i < result.sweepValues.size(); ++i) {
    EXPECT_NEAR(result.probe("v(mid)")[i], 0.5 * result.sweepValues[i],
                1e-6);
  }
}

TEST(DcSweep, InverterTransferCurve) {
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(0.68));
  auto* vin = n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(0.0));
  n.add<MosfetDevice>("MP", n.node("out"), n.node("in"), n.node("vdd"),
                      xtor::pmos45(), 260e-9);
  n.add<MosfetDevice>("MN", n.node("out"), n.node("in"), n.ground(),
                      xtor::nmos45(), 130e-9);
  Simulator sim(n);
  const auto vtc = dcSweep(sim, *vin, 0.0, 0.68, 34, {Probe::v("out")});
  const auto& out = vtc.probe("v(out)");
  // Monotone falling, rail to rail.
  EXPECT_NEAR(out.front(), 0.68, 0.02);
  EXPECT_NEAR(out.back(), 0.0, 0.02);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i], out[i - 1] + 1e-6);
  }
}

TEST(SlowTransientSweep, FefetHysteresisMatchesQuasiStaticAnalysis) {
  // A slow triangular gate sweep on a full circuit-level FEFET is the
  // curve-tracer measurement of the hysteresis: the internal node jumps
  // near the quasi-static fold voltages.  (Plain DC would instead find the
  // leakage-equilibrated state — see dc_sweep.h.)
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  Netlist n;
  auto* vg = n.add<VoltageSource>("Vg", n.node("g"), n.ground(), dc(0.0));
  n.add<VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.05));
  n.add<VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  core::attachFefet(n, "x", "g", "d", "s", params, 0.0);
  Simulator sim(n);
  sim.initializeUic();

  // 0 -> +1 V -> -1 V -> 0 triangle over 120 ns.
  vg->setShape(shapes::pwl(
      {{0.0, 0.0}, {30e-9, 1.0}, {90e-9, -1.0}, {120e-9, 0.0}}));
  TransientOptions options;
  options.duration = 120e-9;
  options.dtMax = 100e-12;
  const auto r = sim.runTransient(
      options, {Probe::v("g"), Probe::v("x:int")});

  // Up-switch: the internal node snaps up during the rising quarter.
  const auto t = r.waveform.time();
  const auto& vgCol = r.waveform.column("v(g)");
  const auto& vi = r.waveform.column("v(x:int)");
  double upJump = 0.0, downJump = 0.0, bestUp = 0.0, bestDown = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double dvi = vi[i] - vi[i - 1];
    if (t[i] < 30e-9 && dvi > bestUp) {
      bestUp = dvi;
      upJump = vgCol[i];
    }
    if (t[i] >= 30e-9 && t[i] < 90e-9 && -dvi > bestDown) {
      bestDown = -dvi;
      downJump = vgCol[i];
    }
  }
  const auto window = core::analyzeHysteresis(params);
  // Kinetics push the measured jumps slightly outward of the static folds.
  EXPECT_NEAR(upJump, window.upSwitchVoltage, 0.12);
  EXPECT_GE(upJump, window.upSwitchVoltage - 0.02);
  EXPECT_NEAR(downJump, window.downSwitchVoltage, 0.12);
  EXPECT_LE(downJump, window.downSwitchVoltage + 0.02);
  EXPECT_GT(upJump, downJump);  // hysteresis: branches differ
}

TEST(DcSweep, RejectsBadSteps) {
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(0.0));
  n.add<Resistor>("R", n.node("a"), n.ground(), 1e3);
  Simulator sim(n);
  EXPECT_THROW(dcSweep(sim, *v, 0.0, 1.0, 0, {Probe::v("a")}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::spice
