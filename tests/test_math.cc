// Unit tests for common/math.h: root finding, quadrature, interpolation,
// crossings and ODE helpers.
#include "common/math.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace fefet::math {
namespace {

TEST(Sign, Basics) {
  EXPECT_EQ(sign(3.0), 1.0);
  EXPECT_EQ(sign(-0.5), -1.0);
  EXPECT_EQ(sign(0.0), 0.0);
}

TEST(Softplus, MatchesLogFormula) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 10.0}) {
    EXPECT_NEAR(softplus(x), std::log1p(std::exp(x)), 1e-12);
  }
}

TEST(Softplus, LargeArgumentsDoNotOverflow) {
  EXPECT_DOUBLE_EQ(softplus(1000.0), 1000.0);
  EXPECT_NEAR(softplus(-1000.0), 0.0, 1e-300);
}

TEST(Logistic, IsDerivativeOfSoftplus) {
  const double h = 1e-6;
  for (double x : {-5.0, -0.3, 0.0, 0.7, 4.0}) {
    const double numeric = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
    EXPECT_NEAR(logistic(x), numeric, 1e-8);
  }
}

TEST(Logistic, SymmetricAroundHalf) {
  EXPECT_NEAR(logistic(0.3) + logistic(-0.3), 1.0, 1e-14);
}

TEST(Polyval, AscendingCoefficients) {
  const double c[] = {1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 17.0);
}

TEST(Bisect, FindsRootOfCubic) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  EXPECT_NEAR(bisect(f, 0.0, 2.0), std::cbrt(2.0), 1e-10);
}

TEST(Bisect, ThrowsWithoutBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisect(f, -1.0, 1.0), NumericalError);
}

TEST(Brent, FindsRootFasterThanBisection) {
  int evals = 0;
  const auto f = [&evals](double x) {
    ++evals;
    return std::exp(x) - 5.0;
  };
  EXPECT_NEAR(brent(f, 0.0, 5.0), std::log(5.0), 1e-10);
  EXPECT_LT(evals, 30);
}

TEST(Brent, HandlesRootAtBracketEdge) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(brent(f, 0.0, 1.0), 0.0);
}

TEST(FindAllRoots, LocatesAllThreeCubicRoots) {
  // x(x-1)(x+1) = x^3 - x.
  const auto f = [](double x) { return x * x * x - x; };
  const auto roots = findAllRoots(f, -2.0, 2.0, 400);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_NEAR(roots[0], -1.0, 1e-9);
  EXPECT_NEAR(roots[1], 0.0, 1e-9);
  EXPECT_NEAR(roots[2], 1.0, 1e-9);
}

TEST(FindAllRoots, EmptyWhenNoRoots) {
  const auto f = [](double x) { return x * x + 0.5; };
  EXPECT_TRUE(findAllRoots(f, -1.0, 1.0).empty());
}

TEST(Trapz, IntegratesLinearExactly) {
  const std::vector<double> x = {0.0, 0.5, 1.0, 2.0};
  const std::vector<double> y = {0.0, 1.0, 2.0, 4.0};  // y = 2x
  EXPECT_NEAR(trapz(x, y), 4.0, 1e-14);
}

TEST(Trapz, QuadraticConverges) {
  std::vector<double> x, y;
  for (int i = 0; i <= 1000; ++i) {
    x.push_back(i / 1000.0);
    y.push_back(x.back() * x.back());
  }
  EXPECT_NEAR(trapz(x, y), 1.0 / 3.0, 1e-6);
}

TEST(Cumtrapz, LastEqualsTrapz) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.5};
  const std::vector<double> y = {1.0, 3.0, 2.0, 0.5};
  const auto c = cumtrapz(x, y);
  ASSERT_EQ(c.size(), x.size());
  EXPECT_DOUBLE_EQ(c.front(), 0.0);
  EXPECT_NEAR(c.back(), trapz(x, y), 1e-14);
}

TEST(Interp1, InterpolatesAndClamps) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {0.0, 10.0, 0.0};
  EXPECT_NEAR(interp1(x, y, 0.5), 5.0, 1e-14);
  EXPECT_NEAR(interp1(x, y, 1.5), 5.0, 1e-14);
  EXPECT_DOUBLE_EQ(interp1(x, y, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 3.0), 0.0);
}

TEST(Interp1, ClampNeverExtrapolatesEitherEdgeSlope) {
  // Asymmetric samples: extending the edge slopes would give -4 at q=-1
  // and 13 at q=5; the contract is to return the boundary sample instead.
  const std::vector<double> x = {0.0, 1.0, 4.0};
  const std::vector<double> y = {2.0, 8.0, 5.0};
  EXPECT_DOUBLE_EQ(interp1(x, y, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 5.0), 5.0);
}

TEST(FirstCrossing, RisingAndFalling) {
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {0.0, 2.0, 2.0, -2.0};
  EXPECT_NEAR(firstCrossing(t, y, 1.0, true), 0.5, 1e-12);
  EXPECT_NEAR(firstCrossing(t, y, 0.0, false), 2.5, 1e-12);
}

TEST(FirstCrossing, ThrowsWhenAbsent) {
  const std::vector<double> t = {0.0, 1.0};
  const std::vector<double> y = {0.0, 0.5};
  EXPECT_THROW(firstCrossing(t, y, 2.0, true), SimulationError);
}

TEST(HasCrossing, DetectsBothDirections) {
  const std::vector<double> up = {0.0, 1.0};
  const std::vector<double> down = {1.0, 0.0};
  EXPECT_TRUE(hasCrossing(up, 0.5));
  EXPECT_TRUE(hasCrossing(down, 0.5));
  EXPECT_FALSE(hasCrossing(up, 2.0));
}

TEST(Rk4, ExponentialDecayAccurate) {
  // dy/dt = -y, y(0) = 1 -> y(1) = e^-1.
  const auto f = [](double, double y) { return -y; };
  const auto tr = integrateRk4(f, 0.0, 1.0, 1.0, 100);
  EXPECT_NEAR(tr.y.back(), std::exp(-1.0), 1e-9);
  EXPECT_EQ(tr.t.size(), 101u);
}

TEST(Rk4, FourthOrderConvergence) {
  const auto f = [](double t, double y) { return t * y; };
  const double exact = std::exp(0.5);  // y' = t y, y(0)=1 -> e^{t^2/2}
  const double e1 =
      std::abs(integrateRk4(f, 0.0, 1.0, 1.0, 10).y.back() - exact);
  const double e2 =
      std::abs(integrateRk4(f, 0.0, 1.0, 1.0, 20).y.back() - exact);
  EXPECT_GT(e1 / e2, 12.0);  // ~16x for 4th order
}

// Property sweep: brent and bisect agree on a family of transcendental
// functions.
class RootAgreement : public ::testing::TestWithParam<double> {};

TEST_P(RootAgreement, BrentMatchesBisect) {
  const double k = GetParam();
  const auto f = [k](double x) { return std::tanh(x) - k; };
  const double a = brent(f, -5.0, 5.0);
  const double b = bisect(f, -5.0, 5.0);
  EXPECT_NEAR(a, b, 1e-8);
  EXPECT_NEAR(a, std::atanh(k), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(TanhLevels, RootAgreement,
                         ::testing::Values(-0.9, -0.5, -0.1, 0.0, 0.3, 0.7,
                                           0.95));

}  // namespace
}  // namespace fefet::math
