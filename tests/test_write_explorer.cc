// Tests of the write trade-off sweeps (paper Fig. 10 and Table 3):
// write-time-vs-voltage shape, failure walls and the iso-write solve.
#include <cmath>
#include <gtest/gtest.h>

#include "core/materials.h"
#include "core/write_explorer.h"

namespace fefet::core {
namespace {

Cell2TConfig fefetConfig() {
  Cell2TConfig cfg;
  cfg.fefet.lk = fefetMaterial();
  return cfg;
}

FeRamConfig feramConfig() {
  FeRamConfig cfg;
  cfg.lk = feramMaterial();
  return cfg;
}

TEST(WriteExplorer, FefetSweepShape) {
  const auto points =
      sweepFefetWrite(fefetConfig(), {0.55, 0.68, 0.85, 1.05});
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_FALSE(p.failed) << p.voltage;
    EXPECT_GT(p.writeTime, 0.0);
    EXPECT_GT(p.writeEnergy, 0.0);
  }
  // Write time decreases monotonically with voltage (Fig. 10(a)).
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].writeTime, points[i - 1].writeTime);
  }
  // The 0.68 V point reproduces the 550 ps anchor.
  EXPECT_NEAR(points[1].writeTime, 550e-12, 40e-12);
}

TEST(WriteExplorer, FeramSweepShape) {
  const auto points = sweepFeramWrite(feramConfig(), {1.45, 1.64, 1.9, 2.2});
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].writeTime, points[i - 1].writeTime);
  }
  EXPECT_NEAR(points[1].writeTime, 550e-12, 40e-12);
}

TEST(WriteExplorer, SubWallVoltagesFail) {
  const auto fefet = sweepFefetWrite(fefetConfig(), {0.25}, 2e-9);
  EXPECT_TRUE(fefet.front().failed);
  const auto feram = sweepFeramWrite(feramConfig(), {1.0}, 2e-9);
  EXPECT_TRUE(feram.front().failed);
}

TEST(WriteExplorer, FefetWriteWallBelowHalfVolt) {
  // Paper Fig. 10(a): FEFET write failures below ~0.5 V.  Our device's
  // wall (the up-switch fold plus dynamic margin) sits in the 0.3-0.5 V
  // band; it must lie strictly below the 0.68 V operating point.
  const double wall = fefetWriteWall(fefetConfig(), 0.2, 0.8);
  EXPECT_GT(wall, 0.25);
  EXPECT_LT(wall, 0.55);
}

TEST(WriteExplorer, FeramWriteWallNearOnePointFourVolts) {
  // Paper: failures below ~1.5 V for FERAM (static coercive wall 1.24 V
  // plus kinetic margin at finite pulse widths).
  const double wall = feramWriteWall(feramConfig(), 1.1, 1.8);
  EXPECT_GT(wall, 1.2);
  EXPECT_LT(wall, 1.55);
}

TEST(WriteExplorer, IsoWriteReproducesTable3Voltages) {
  // At iso write time 550 ps the paper reports 0.68 V vs 1.64 V.
  const auto fefet = isoWriteFefet(fefetConfig(), 550e-12);
  EXPECT_NEAR(fefet.voltage, 0.68, 0.05);
  const auto feram = isoWriteFeram(feramConfig(), 550e-12);
  EXPECT_NEAR(feram.voltage, 1.64, 0.08);
  // And the cell-level write energy advantage holds.
  EXPECT_LT(fefet.writeEnergy, feram.writeEnergy);
}

TEST(WriteExplorer, IsoWriteRejectsUnreachableTargets) {
  EXPECT_THROW(isoWriteFefet(fefetConfig(), 550e-12, 0.9, 1.2),
               InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::core
