// Tests of the LK ferroelectric capacitor as an MNA device: switching,
// retention, charge delivery and consistency with the standalone
// integrator in ferro/fe_capacitor.h.
#include <cmath>
#include <gtest/gtest.h>

#include "ferro/fe_capacitor.h"
#include "spice/fecap_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::spice {
namespace {

using shapes::dc;
using shapes::pulse;

ferro::LkCoefficients material() {
  ferro::LkCoefficients c;
  c.rho = 1.0;
  return c;
}

const ferro::FeGeometry kGeom{1e-9, 65e-9 * 45e-9};

TEST(FeCapDevice, SwitchesUnderSuperCoercivePulse) {
  Netlist n;
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  n.add<VoltageSource>("V1", n.node("a"), n.ground(),
                       pulse(0.0, 2.0, 0.1e-9, 20e-12, 2e-9, 20e-12));
  auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(),
                                kGeom, -pr);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 3e-9;
  sim.runTransient(options, {Probe::deviceState("F", "P")});
  EXPECT_NEAR(fe->polarization(), pr, 0.05 * pr);
}

TEST(FeCapDevice, SubCoercivePulseDoesNotSwitch) {
  Netlist n;
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  n.add<VoltageSource>("V1", n.node("a"), n.ground(),
                       pulse(0.0, 0.8, 0.1e-9, 20e-12, 2e-9, 20e-12));
  auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(),
                                kGeom, -pr);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 3e-9;
  sim.runTransient(options, {Probe::deviceState("F", "P")});
  EXPECT_NEAR(fe->polarization(), -pr, 0.1 * pr);
}

TEST(FeCapDevice, RetainsPolarizationAtZeroBias) {
  Netlist n;
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(0.0));
  auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(),
                                kGeom, pr);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 50e-9;
  sim.runTransient(options, {Probe::deviceState("F", "P")});
  EXPECT_NEAR(fe->polarization(), pr, 1e-3 * pr);
}

TEST(FeCapDevice, MatchesStandaloneIntegrator) {
  // Drive the same constant 1.8 V through both the MNA device and the
  // RK4 standalone model; the trajectories must agree.
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.8));
  n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(), kGeom, -pr);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1.0e-9;
  options.dtMax = 1e-12;
  const auto r = sim.runTransient(options, {Probe::deviceState("F", "P")});

  ferro::FeCapacitor ref(material(), kGeom);
  ref.setPolarization(-pr);
  ref.stepConstant(1.8, 1.0e-9, 4000);
  EXPECT_NEAR(r.waveform.finalValue("P(F)"), ref.polarization(),
              0.03 * pr);
}

TEST(FeCapDevice, DeliversSwitchingChargeToSeriesCapacitor) {
  // FE in series with a big linear capacitor: the switched charge
  // A * dP appears on the linear cap.
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  const double cBig = 50e-15;
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(),
                       pulse(0.0, 2.5, 0.1e-9, 20e-12, 3e-9, 20e-12));
  auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.node("mid"), material(),
                                kGeom, -pr);
  n.add<Capacitor>("CL", n.node("mid"), n.ground(), cBig);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2.5e-9;
  const auto r = sim.runTransient(
      options, {Probe::v("mid"), Probe::deviceState("F", "P")});
  const double dP = fe->polarization() - (-pr);
  const double expectedV = kGeom.area * dP / cBig;
  EXPECT_GT(dP, 0.1);
  EXPECT_NEAR(r.waveform.finalValue("v(mid)"), expectedV, 0.15 * expectedV);
}

TEST(FeCapDevice, DcSolveRespectsPolarizationBasin) {
  // At 0 V bias the static equation E_s(P) = 0 has three solutions; DC
  // must converge into the basin of the committed state.
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  for (double p0 : {-pr, pr}) {
    Netlist n;
    n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(0.0));
    auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(),
                                  kGeom, p0);
    Simulator sim(n);
    sim.solveDc();
    SystemView view(sim.solution(), n.nodeCount());
    EXPECT_NEAR(view.aux(fe->auxRow()), p0, 0.02 * pr);
  }
}

TEST(FeCapDevice, BackgroundDielectricAddsLinearResponse) {
  // With a large background permittivity, a small sub-coercive step still
  // couples charge capacitively to a series linear capacitor.
  Netlist n;
  const double pr = ferro::LandauKhalatnikov(material()).remnantPolarization();
  n.add<VoltageSource>("V1", n.node("a"), n.ground(),
                       pulse(0.0, 0.2, 0.05e-9, 10e-12, 1.0, 10e-12));
  n.add<FeCapDevice>("F", n.node("a"), n.node("mid"), material(), kGeom,
                     -pr, /*backgroundEpsR=*/40.0);
  n.add<Capacitor>("CL", n.node("mid"), n.ground(), 1e-15);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  const auto r = sim.runTransient(options, {Probe::v("mid")});
  EXPECT_GT(r.waveform.finalValue("v(mid)"), 0.02);
}

TEST(FeCapDevice, ReportsStates) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(0.0));
  auto* fe = n.add<FeCapDevice>("F", n.node("a"), n.ground(), material(),
                                kGeom, 0.1);
  Simulator sim(n);
  sim.initializeUic();
  SystemView view(sim.solution(), n.nodeCount());
  const auto states = fe->reportState(view);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0].name, "P");
  EXPECT_EQ(states[1].name, "v");
}

// Property: circuit-level switching time scales linearly with rho, same
// law as the standalone capacitor.
class RhoScaling : public ::testing::TestWithParam<double> {};

TEST_P(RhoScaling, SwitchingTimeLinearInRho) {
  const double rho = GetParam();
  ferro::LkCoefficients mat = material();
  mat.rho = rho;
  const double pr = ferro::LandauKhalatnikov(mat).remnantPolarization();
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(2.0));
  n.add<FeCapDevice>("F", n.node("a"), n.ground(), mat, kGeom, -pr);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 4e-9 * rho;
  options.dtMax = options.duration / 400.0;
  const auto r = sim.runTransient(options, {Probe::deviceState("F", "P")});
  const double tSwitch = r.waveform.firstCrossing("P(F)", 0.0, true);
  // Reference: rho = 1 switches in some t1; expect t = rho * t1 within 10%.
  static double t1 = -1.0;
  if (rho == 1.0) t1 = tSwitch;
  if (t1 > 0.0 && rho != 1.0) {
    EXPECT_NEAR(tSwitch / t1, rho, 0.1 * rho);
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, RhoScaling,
                         ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace fefet::spice
