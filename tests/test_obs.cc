// Observability subsystem audit (obs/metrics.h, obs/trace.h,
// obs/report.h + the log/telemetry satellites):
//
//  * counters survive concurrent increments without losing updates;
//  * histogram bucketing follows Prometheus "le" semantics exactly at
//    the edges, with the overflow bucket last;
//  * the sharded snapshot merge is associative — N threads striping into
//    shards must equal a single-threaded reference fill;
//  * spans nest by timestamp containment and the bounded ring drops the
//    oldest events (counted) on overflow;
//  * the Chrome trace_event and metrics-snapshot JSON exporters emit
//    syntactically valid JSON (checked by a small validator below);
//  * the counter/histogram/span hot paths perform zero heap allocations
//    at steady state (same operator-new hook as test_stamp_alloc);
//  * ScopedThreadPrefix restores the previous log prefix (the pooled-
//    thread leak fix) and the JSON log sink escapes its payload.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<long> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace fefet::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (syntax only, no value model).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return p_ == end_;
  }

 private:
  bool value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skipWs();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (p_ == end_) return false;
      if (*p_ == '}') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  bool array() {
    ++p_;  // '['
    skipWs();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (p_ == end_) return false;
      if (*p_ == ']') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  bool string() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (static_cast<unsigned char>(*p_) < 0x20) return false;
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        const char e = *p_;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ != start && !(p_ - start == 1 && start[0] == '-');
  }
  bool literal(const char* word) {
    while (*word) {
      if (p_ == end_ || *p_ != *word) return false;
      ++p_;
      ++word;
    }
    return true;
  }
  void skipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  const char* p_;
  const char* end_;
};

bool isValidJson(const std::string& text) {
  return JsonChecker(text).valid();
}

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(isValidJson("{}"));
  EXPECT_TRUE(isValidJson(R"({"a":[1,2.5,-3e-2],"b":"x\"y","c":null})"));
  EXPECT_FALSE(isValidJson("{"));
  EXPECT_FALSE(isValidJson(R"({"a":})"));
  EXPECT_FALSE(isValidJson("[1,]"));
  EXPECT_FALSE(isValidJson("{} extra"));
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterSurvivesConcurrentIncrements) {
  Counter& c = Metrics::counter("test.obs.concurrent_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.total(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, HistogramBucketEdgesAreLeSemantics) {
  static constexpr double kEdges[] = {1.0, 2.0, 5.0};
  Histogram& h = Metrics::histogram("test.obs.edge_hist", kEdges);
  h.reset();
  // v <= edge lands in that bucket; the first edge >= v wins.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (le: 1.0 <= 1.0)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(5.0);   // bucket 2
  h.observe(5.001); // overflow
  h.observe(1e9);   // overflow
  const auto buckets = h.bucketTotals();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 1e9);
}

TEST(Metrics, HistogramDropsNanObservations) {
  // Regression: a NaN fails every `v <= edge` comparison, so it used to
  // land in the overflow bucket and poison the running sum into NaN for
  // the histogram's whole lifetime.  NaNs are now dropped from the
  // distribution and tallied in nanCount().
  static constexpr double kEdges[] = {1.0, 10.0};
  Histogram& h = Metrics::histogram("test.obs.nan_hist", kEdges);
  h.reset();
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(20.0);
  h.observe(std::nan(""));
  const auto buckets = h.bucketTotals();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], 1u);  // overflow holds only the genuine 20.0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.nanCount(), 2u);
  // The sum stays finite and exact — no NaN poisoning.
  EXPECT_DOUBLE_EQ(h.sum(), 20.5);
  // Snapshot/JSON carry the dropped-NaN tally.
  const MetricsSnapshot snap = Metrics::snapshot();
  for (const auto& hv : snap.histograms) {
    if (hv.name == "test.obs.nan_hist") EXPECT_EQ(hv.nan, 2u);
  }
  const std::string json = snap.toJson();
  EXPECT_TRUE(isValidJson(json)) << json;
  EXPECT_NE(json.find("\"nan\":2"), std::string::npos);
  // reset() clears the NaN tally too.
  h.reset();
  EXPECT_EQ(h.nanCount(), 0u);
}

TEST(Metrics, ShardedMergeMatchesSingleThreadReference) {
  // The same deterministic observation stream, once striped across 6
  // threads (hitting different shards) and once on this thread alone.
  // Per-bucket sums are associative, so the merged totals must be equal.
  static constexpr double kEdges[] = {2.0, 4.0, 8.0, 16.0};
  Histogram& striped = Metrics::histogram("test.obs.striped_hist", kEdges);
  Histogram& reference = Metrics::histogram("test.obs.reference_hist", kEdges);
  striped.reset();
  reference.reset();
  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;
  const auto valueAt = [](int thread, int i) {
    return static_cast<double>((thread * 7 + i * 3) % 20);  // integers: exact
  };
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&striped, t, &valueAt] {
      for (int i = 0; i < kPerThread; ++i) striped.observe(valueAt(t, i));
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) reference.observe(valueAt(t, i));
  }
  EXPECT_EQ(striped.bucketTotals(), reference.bucketTotals());
  EXPECT_EQ(striped.count(), reference.count());
  // Integer-valued observations: double accumulation is exact in any
  // order, so even the sums must match bit for bit.
  EXPECT_DOUBLE_EQ(striped.sum(), reference.sum());
}

TEST(Metrics, SnapshotAndJson) {
  Counter& c = Metrics::counter("test.obs.snapshot_counter");
  c.reset();
  c.add(41);
  c.increment();
  Metrics::gauge("test.obs.snapshot_gauge").set(2.5);
  const MetricsSnapshot snap = Metrics::snapshot();
  EXPECT_EQ(snap.counterValue("test.obs.snapshot_counter"), 42u);
  EXPECT_EQ(snap.counterValue("test.obs.never_registered"), 0u);
  const std::string json = snap.toJson();
  EXPECT_TRUE(isValidJson(json)) << json;
  EXPECT_NE(json.find("\"test.obs.snapshot_counter\":42"), std::string::npos);
}

TEST(Metrics, DisabledGateIsHonoredByCallSites) {
  // The gate itself is advisory (call sites check it); verify the toggle
  // round-trips and ends enabled for the rest of the suite.
  const bool was = Metrics::enabled();
  Metrics::setEnabled(false);
  EXPECT_FALSE(Metrics::enabled());
  Metrics::setEnabled(true);
  EXPECT_TRUE(Metrics::enabled());
  Metrics::setEnabled(was);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, SpansNestByTimestampContainment) {
  Trace::enable(1 << 8);
  {
    Span outer("test.outer");
    { Span inner1("test.inner1"); }
    { Span inner2("test.inner2"); }
  }
  Trace::disable();
  const auto events = Trace::events();
  ASSERT_EQ(events.size(), 3u);
  // events() sorts by start time: outer starts first.
  EXPECT_STREQ(events[0].name, "test.outer");
  const auto& outer = events[0];
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].startNs, outer.startNs);
    EXPECT_LE(events[i].startNs + events[i].durNs,
              outer.startNs + outer.durNs);
    EXPECT_EQ(events[i].thread, outer.thread);
  }
  EXPECT_LE(events[1].startNs + events[1].durNs, events[2].startNs);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  Trace::enable(/*eventsPerThread=*/8);  // already a power of two
  constexpr int kRecorded = 20;
  for (int i = 0; i < kRecorded; ++i) {
    Span span("test.overflow", static_cast<std::uint64_t>(i));
  }
  Trace::disable();
  const auto events = Trace::events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(Trace::dropped(), static_cast<std::uint64_t>(kRecorded - 8));
  // The survivors are the newest 8, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, static_cast<std::uint64_t>(kRecorded - 8 + i));
    EXPECT_TRUE(events[i].hasArg);
  }
}

TEST(Trace, DisabledSpansRecordNothing) {
  Trace::enable(1 << 8);
  Trace::disable();
  Trace::clear();
  { Span span("test.disabled"); }
  EXPECT_TRUE(Trace::events().empty());
}

TEST(Trace, ChromeJsonExporterIsValid) {
  Trace::enable(1 << 8);
  {
    Span outer("sweep.point", 3);
    Span inner("newton.solve");
  }
  Trace::disable();
  const std::string json = Trace::toChromeJson();
  EXPECT_TRUE(isValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep.point\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, EventsFromMultipleThreadsMergeChronologically) {
  Trace::enable(1 << 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 5; ++i) Span span("test.worker");
    });
  }
  for (auto& w : workers) w.join();
  Trace::disable();
  const auto events = Trace::events();
  ASSERT_EQ(events.size(), 20u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].startNs, events[i - 1].startNs);
  }
}

// ---------------------------------------------------------------------------
// RunReport

TEST(RunReport, MergesFieldsAndMetricsIntoValidJson) {
  Metrics::counter("test.obs.report_counter").add(7);
  RunReport report("test_bench");
  report.addCount("points", 12);
  report.addNumber("wall_s", 1.25);
  report.addString("note", "quoted \"text\"");
  report.addBool("ok", true);
  const std::string json = report.toJson(Metrics::snapshot());
  EXPECT_TRUE(isValidJson(json)) << json;
  EXPECT_NE(json.find("\"bench\":\"test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"points\":12"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Allocation audit: the hot paths must be allocation-free at steady state.

TEST(ObsAlloc, CounterAndHistogramHotPathsAreAllocationFree) {
  static constexpr double kEdges[] = {1.0, 10.0, 100.0};
  Counter& c = Metrics::counter("test.obs.alloc_counter");
  Histogram& h = Metrics::histogram("test.obs.alloc_hist", kEdges);
  c.increment();  // warm: registration happened above, storage is fixed
  h.observe(5.0);

  g_allocations.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.add(2);
    h.observe(static_cast<double>(i % 128));
  }
  g_armed.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0);
}

TEST(ObsAlloc, SpanRecordingIsAllocationFreeAfterWarmup) {
  Trace::enable(1 << 10);
  { Span warm("test.alloc_warm"); }  // first record acquires this
                                     // thread's ring (may allocate)
  g_allocations.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    Span span("test.alloc_span", static_cast<std::uint64_t>(i));
  }
  g_armed.store(false, std::memory_order_relaxed);
  Trace::disable();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0);
}

// ---------------------------------------------------------------------------
// Log satellites

TEST(LogPrefix, ScopedThreadPrefixRestoresPrevious) {
  Log::setThreadPrefix("outer ");
  {
    ScopedThreadPrefix guard("inner ");
    EXPECT_EQ(Log::threadPrefix(), "inner ");
    {
      ScopedThreadPrefix nested("nested ");
      EXPECT_EQ(Log::threadPrefix(), "nested ");
    }
    EXPECT_EQ(Log::threadPrefix(), "inner ");
  }
  EXPECT_EQ(Log::threadPrefix(), "outer ");
  Log::setThreadPrefix("");
}

TEST(LogJson, SinkToggleAndEscaping) {
  const bool was = Log::jsonSink();
  Log::setJsonSink(true);
  EXPECT_TRUE(Log::jsonSink());
  Log::setJsonSink(was);
  // The JSON sink builds its line from these helpers; quotes, backslashes
  // and control characters must come back JSON-clean.
  EXPECT_EQ(strings::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_TRUE(isValidJson('"' + strings::jsonEscape("ctrl:\x01\ttab") + '"'));
  EXPECT_TRUE(isValidJson(strings::jsonNumber(1.5)));
  EXPECT_TRUE(isValidJson(strings::jsonNumber(
      std::numeric_limits<double>::quiet_NaN())));
}

}  // namespace
}  // namespace fefet::obs
