// Tests of the word-addressable NVM macro facade (core/nvm_macro.h).
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/nvm_macro.h"

namespace fefet::core {
namespace {

TEST(NvmMacro, CapacityFromGeometry) {
  NvmMacro macro(MacroTechnology::kFefet);
  // 256 x 256 bits / 32-bit words = 2048 words.
  EXPECT_EQ(macro.wordCount(), 2048);
  EXPECT_EQ(macro.wordBits(), 32);
}

TEST(NvmMacro, WriteReadRoundTrip) {
  NvmMacro macro(MacroTechnology::kFefet);
  macro.writeWord(7, 0xDEADBEEF);
  macro.writeWord(0, 0x12345678);
  EXPECT_EQ(macro.readWord(7).value, 0xDEADBEEFu);
  EXPECT_EQ(macro.readWord(0).value, 0x12345678u);
  EXPECT_EQ(macro.readWord(1).value, 0u);  // untouched words read zero
}

TEST(NvmMacro, ChargesTable3Energies) {
  NvmMacro fefet(MacroTechnology::kFefet);
  NvmMacro feram(MacroTechnology::kFeram);
  const auto wf = fefet.writeWord(0, 1);
  const auto wr = feram.writeWord(0, 1);
  EXPECT_NEAR(wf.energy, 4.82e-12, 0.5e-12);
  EXPECT_NEAR(wr.energy, 15.0e-12, 1.5e-12);
  const auto rf = fefet.readWord(0);
  const auto rr = feram.readWord(0);
  EXPECT_NEAR(rf.energy, 0.28e-12, 0.05e-12);
  EXPECT_NEAR(rr.energy, 15.5e-12, 1.6e-12);
  EXPECT_NEAR(wf.latency, 0.55e-9, 1e-12);
  EXPECT_NEAR(rf.latency, 3.0e-9, 1e-12);
}

TEST(NvmMacro, AccumulatesEnergyAndCounts) {
  NvmMacro macro(MacroTechnology::kFefet);
  for (int i = 0; i < 10; ++i) macro.writeWord(i, 1u);
  for (int i = 0; i < 5; ++i) macro.readWord(i);
  EXPECT_EQ(macro.writeAccesses(), 10);
  EXPECT_EQ(macro.readAccesses(), 5);
  EXPECT_NEAR(macro.totalEnergy(),
              10 * macro.numbers().writeEnergy +
                  5 * macro.numbers().readEnergy,
              1e-18);
}

TEST(NvmMacro, BoundsChecked) {
  NvmMacro macro(MacroTechnology::kFefet);
  EXPECT_THROW(macro.writeWord(-1, 0), InvalidArgumentError);
  EXPECT_THROW(macro.readWord(macro.wordCount()), InvalidArgumentError);
}

TEST(NvmMacro, FeramAreaSmallerButReadsAge) {
  NvmMacro fefet(MacroTechnology::kFefet);
  NvmMacro feram(MacroTechnology::kFeram);
  // Fig. 11: the 2T cell costs ~2.4x area.
  EXPECT_NEAR(fefet.arrayArea() / feram.arrayArea(), 2.4, 0.1);
  // Destructive FERAM reads count against endurance; FEFET reads do not.
  for (int i = 0; i < 100; ++i) {
    fefet.readWord(0);
    feram.readWord(0);
  }
  EXPECT_DOUBLE_EQ(fefet.worstCaseCycles(), 0.0);
  EXPECT_DOUBLE_EQ(feram.worstCaseCycles(), 100.0);
}

TEST(NvmMacro, EnduranceMarginDecreasesWithCycling) {
  NvmMacro macro(MacroTechnology::kFefet);
  EXPECT_DOUBLE_EQ(macro.enduranceMarginRemaining(), 1.0);
  for (int i = 0; i < 1000; ++i) macro.writeWord(0, i);
  const double afterThousand = macro.enduranceMarginRemaining();
  EXPECT_LE(afterThousand, 1.0);
  EXPECT_GT(afterThousand, 0.99);  // 1e3 cycles is nothing for FE
}

TEST(NvmMacro, CustomGeometry) {
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 16;
  NvmMacro macro(MacroTechnology::kFeram, cfg);
  EXPECT_EQ(macro.wordCount(), 256);
  // Smaller array -> shorter wires -> cheaper accesses.
  NvmMacro big(MacroTechnology::kFeram);
  EXPECT_LT(macro.numbers().writeEnergy, big.numbers().writeEnergy);
}

TEST(NvmMacro, SparePoolExhaustionDegradesGracefullyAndIsRecorded) {
  // Every cell stuck at one and only two spares: a burst of zero-writes
  // must burn through the pool, then degrade to recorded uncorrected bits
  // — the write path never throws, and the ledger names the cause.
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtOneRate = 1.0;
  res.retry.maxRetries = 0;
  res.eccEnabled = false;
  res.spareWords = 2;
  NvmMacro macro(MacroTechnology::kFefet, cfg, res);
  for (int a = 0; a < 4; ++a) {
    EXPECT_NO_THROW(macro.writeWord(a, 0x0u));
  }
  const auto& report = macro.report();
  EXPECT_EQ(report.remappedRows, 2);          // the whole pool was spent
  EXPECT_GT(report.sparePoolExhausted, 0);    // and its exhaustion recorded
  EXPECT_GT(report.uncorrectedBits, 0);       // the leak is accounted, not lost
  EXPECT_FALSE(report.clean());
  // Reads still serve (the stuck value), no crash.
  EXPECT_NO_THROW(macro.readWord(0));
}

}  // namespace
}  // namespace fefet::core
