// Concurrency tests for the sim layer: ThreadPool basics and the
// SweepEngine contracts — ordered results, thread-count-invariant seeding,
// exception capture, progress reporting, cooperative cancellation, and the
// resilience layer (journaled resume, CollectAndContinue, watchdog
// timeouts, sweep deadlines).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/error.h"
#include "common/stats.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"

namespace fefet {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  sim::ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  sim::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(SweepEngine, ReturnsResultsInInputOrder) {
  sim::SweepOptions options;
  options.threads = 4;
  sim::SweepEngine engine(options);
  std::vector<int> points(64);
  std::iota(points.begin(), points.end(), 0);
  const auto results =
      engine.run(points, [](int p, const sim::SweepContext& ctx) {
        EXPECT_EQ(static_cast<std::size_t>(p), ctx.index);
        // Stagger completion so later points routinely finish first.
        std::this_thread::sleep_for(std::chrono::microseconds(200 * (p % 5)));
        return p * p;
      });
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(SweepEngine, SeedsAreInvariantUnderThreadCount) {
  std::vector<int> points(40);
  std::iota(points.begin(), points.end(), 0);
  auto collectSeeds = [&](int threads) {
    sim::SweepOptions options;
    options.threads = threads;
    options.baseSeed = 99;
    sim::SweepEngine engine(options);
    return engine.run(points, [](int, const sim::SweepContext& ctx) {
      // A derived "simulation result" that depends only on the seed.
      stats::Rng rng(ctx.seed);
      return rng.uniform(0.0, 1.0);
    });
  };
  const auto one = collectSeeds(1);
  const auto four = collectSeeds(4);
  const auto eight = collectSeeds(8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(SweepEngine, PointSeedIsAPureWellMixedFunction) {
  EXPECT_EQ(sim::SweepEngine::pointSeed(1, 0), sim::SweepEngine::pointSeed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    seeds.insert(sim::SweepEngine::pointSeed(2016, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions on a small index range
  EXPECT_NE(sim::SweepEngine::pointSeed(1, 5), sim::SweepEngine::pointSeed(2, 5));
}

TEST(SweepEngine, CapturesWorkerExceptionsAsSweepError) {
  sim::SweepOptions options;
  options.threads = 4;
  sim::SweepEngine engine(options);
  std::vector<int> points(20);
  std::iota(points.begin(), points.end(), 0);
  std::atomic<int> completed{0};
  try {
    engine.run(points, [&](int p, const sim::SweepContext&) {
      if (p % 7 == 3) {
        throw SimulationError("point " + std::to_string(p) + " diverged");
      }
      completed.fetch_add(1);
      return p;
    });
    FAIL() << "expected SweepError";
  } catch (const sim::SweepError& e) {
    ASSERT_EQ(e.failures().size(), 3u);  // points 3, 10, 17
    EXPECT_EQ(e.failures()[0].index, 3u);
    EXPECT_EQ(e.failures()[1].index, 10u);
    EXPECT_EQ(e.failures()[2].index, 17u);
    EXPECT_NE(e.failures()[0].message.find("point 3 diverged"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3 of 20"), std::string::npos);
  }
  // The healthy points all ran to completion despite the failures.
  EXPECT_EQ(completed.load(), 17);
}

TEST(SweepEngine, ProgressReportsEveryPointAndIsSerialized) {
  sim::SweepOptions options;
  options.threads = 4;
  std::mutex progressMutex;
  std::vector<std::size_t> doneValues;
  options.progress = [&](std::size_t done, std::size_t total) {
    // The engine serializes this callback; the mutex is belt-and-braces so
    // the test itself stays race-free under TSan.
    std::lock_guard<std::mutex> lock(progressMutex);
    EXPECT_EQ(total, 32u);
    doneValues.push_back(done);
  };
  sim::SweepEngine engine(options);
  std::vector<int> points(32);
  std::iota(points.begin(), points.end(), 0);
  engine.run(points, [](int p, const sim::SweepContext&) { return p; });
  ASSERT_EQ(doneValues.size(), 32u);
  for (std::size_t i = 0; i < doneValues.size(); ++i) {
    EXPECT_EQ(doneValues[i], i + 1);  // strictly increasing 1..total
  }
}

TEST(SweepEngine, CancelPredicateStopsTheSweepEarly) {
  sim::SweepOptions options;
  options.threads = 2;
  std::atomic<std::size_t> finished{0};
  options.cancel = [&] { return finished.load() >= 8; };
  sim::SweepEngine engine(options);
  std::vector<int> points(1000);
  std::iota(points.begin(), points.end(), 0);
  try {
    engine.run(points, [&](int p, const sim::SweepContext&) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      finished.fetch_add(1);
      return p;
    });
    FAIL() << "expected SweepCancelled";
  } catch (const sim::SweepCancelled& e) {
    EXPECT_GE(e.completed(), 8u);
    EXPECT_LT(e.completed(), points.size());
  }
}

TEST(SweepEngine, ExplicitCancelFromAPointStopsTheRun) {
  sim::SweepOptions options;
  options.threads = 1;  // deterministic: exactly one point completes
  sim::SweepEngine engine(options);
  EXPECT_FALSE(engine.cancelRequested());
  std::vector<int> points(10);
  std::iota(points.begin(), points.end(), 0);
  try {
    engine.run(points, [&](int p, const sim::SweepContext&) {
      engine.cancel();
      return p;
    });
    FAIL() << "expected SweepCancelled";
  } catch (const sim::SweepCancelled& e) {
    EXPECT_EQ(e.completed(), 1u);
  }
  EXPECT_TRUE(engine.cancelRequested());
}

TEST(SweepEngine, EmptyPointSetReturnsEmptyResults) {
  sim::SweepEngine engine;
  const std::vector<int> points;
  const auto results =
      engine.run(points, [](int p, const sim::SweepContext&) { return p; });
  EXPECT_TRUE(results.empty());
}

TEST(SweepEngine, ParallelAccumulatorMergeMatchesSinglePass) {
  // The intended worker pattern: per-thread partial Accumulators merged in
  // input order equal the single-pass reduction.
  std::vector<double> samples;
  stats::Rng rng(5);
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal(1.0, 0.25));
  stats::Accumulator serial;
  for (double s : samples) serial.add(s);

  sim::SweepOptions options;
  options.threads = 4;
  sim::SweepEngine engine(options);
  const std::vector<int> chunks = {0, 1, 2, 3};  // 125 samples each
  const auto partials =
      engine.run(chunks, [&](int c, const sim::SweepContext&) {
        stats::Accumulator acc;
        for (int i = c * 125; i < (c + 1) * 125; ++i) acc.add(samples[i]);
        return acc;
      });
  stats::Accumulator merged;
  for (const auto& partial : partials) merged.merge(partial);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-13);
  EXPECT_NEAR(merged.stddev(), serial.stddev(), 1e-13);
  EXPECT_DOUBLE_EQ(merged.minimum(), serial.minimum());
  EXPECT_DOUBLE_EQ(merged.maximum(), serial.maximum());
}

// ---------------------------------------------------------------------------
// Resilience layer

/// Unique temp journal path per test, removed on destruction.
class TempJournal {
 public:
  TempJournal()
      : path_(::testing::TempDir() + "sim_sweep_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".jsonl") {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sim::SweepCodec<double> doubleCodec() {
  sim::SweepCodec<double> codec;
  codec.encode = [](const double& v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return std::string(buf);
  };
  codec.decode = [](const std::string& s) { return std::strtod(s.c_str(), nullptr); };
  return codec;
}

/// The per-point "simulation": a seed-dependent value, so bit-identity of a
/// resumed run is a real check, not a constant comparison.
double seedValue(int p, const sim::SweepContext& ctx) {
  stats::Rng rng(ctx.seed);
  return rng.uniform(0.0, 1.0) + p;
}

TEST(SweepEngineResilience, KilledRunResumesBitIdentically) {
  TempJournal journal;
  std::vector<int> points(24);
  std::iota(points.begin(), points.end(), 0);

  // Uninterrupted reference run (no journal involved).
  sim::SweepEngine reference;
  const auto expected = reference.run(points, seedValue);

  // "Kill" a journaled run after 6 completed points: cancellation after the
  // journal has absorbed them stands in for SIGKILL (the file is left
  // exactly as a dead process would leave it — check.sh covers the real
  // SIGKILL path end-to-end).
  const std::size_t kKillAfter = 6;
  {
    sim::SweepOptions options;
    options.threads = 1;
    options.journal.path = journal.path();
    options.journal.configDigest = 42;
    sim::SweepEngine engine(options);
    std::size_t completedCount = 0;
    try {
      engine.run(
          points,
          [&](int p, const sim::SweepContext& ctx) {
            const double v = seedValue(p, ctx);
            if (++completedCount >= kKillAfter) engine.cancel();
            return v;
          },
          doubleCodec());
      FAIL() << "expected SweepCancelled";
    } catch (const sim::SweepCancelled& e) {
      EXPECT_EQ(e.completed(), kKillAfter);
      EXPECT_EQ(e.failed(), 0u);
    }
  }

  // Resume: the completed prefix must replay from the journal, the rest
  // re-simulates, and the full result vector is bit-identical.
  sim::SweepOptions options;
  options.threads = 2;
  options.journal.path = journal.path();
  options.journal.resume = true;
  options.journal.configDigest = 42;
  sim::SweepEngine engine(options);
  const auto resumed = engine.run(points, seedValue, doubleCodec());
  ASSERT_EQ(resumed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resumed[i], expected[i]) << "point " << i;  // bit-exact
  }
  const auto summary = engine.summary();
  EXPECT_EQ(summary.fromJournal, kKillAfter);
  EXPECT_EQ(summary.ok, points.size() - kKillAfter);
  EXPECT_EQ(summary.completed(), points.size());
}

TEST(SweepEngineResilience, ResumeWithDifferentDigestStartsFresh) {
  TempJournal journal;
  std::vector<int> points(8);
  std::iota(points.begin(), points.end(), 0);
  {
    sim::SweepOptions options;
    options.journal.path = journal.path();
    options.journal.configDigest = 1;
    sim::SweepEngine engine(options);
    engine.run(points, seedValue, doubleCodec());
  }
  sim::SweepOptions options;
  options.journal.path = journal.path();
  options.journal.resume = true;
  options.journal.configDigest = 2;  // the run shape changed
  sim::SweepEngine engine(options);
  engine.run(points, seedValue, doubleCodec());
  EXPECT_EQ(engine.summary().fromJournal, 0u);  // nothing replayed
  EXPECT_EQ(engine.summary().ok, points.size());
}

TEST(SweepEngineResilience, CollectAndContinueReturnsPartialResults) {
  sim::SweepOptions options;
  options.threads = 2;
  options.failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  sim::SweepEngine engine(options);
  std::vector<int> points(12);
  std::iota(points.begin(), points.end(), 0);
  const auto results = engine.run(points, [](int p, const sim::SweepContext&) {
    if (p % 4 == 1) throw SimulationError("point diverged");
    return p * 10;
  });
  ASSERT_EQ(results.size(), points.size());
  const auto& outcomes = engine.outcomes();
  ASSERT_EQ(outcomes.size(), points.size());
  for (int p = 0; p < 12; ++p) {
    if (p % 4 == 1) {
      EXPECT_EQ(outcomes[p].status, sim::SweepPointStatus::kFailed);
      EXPECT_NE(outcomes[p].message.find("diverged"), std::string::npos);
      EXPECT_EQ(results[p], 0);  // default-constructed placeholder
    } else {
      EXPECT_EQ(outcomes[p].status, sim::SweepPointStatus::kOk);
      EXPECT_EQ(results[p], p * 10);
    }
  }
  EXPECT_EQ(engine.summary().ok, 9u);
  EXPECT_EQ(engine.summary().failed, 3u);
}

TEST(SweepEngineResilience, WatchdogCancelsAHardTimeoutStraggler) {
  sim::SweepOptions options;
  options.threads = 2;  // watchdog thread engages
  options.hardPointTimeoutSeconds = 0.1;
  options.failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  sim::SweepEngine engine(options);
  const std::vector<int> points = {0, 1, 2, 3};
  const auto results =
      engine.run(points, [](int p, const sim::SweepContext& ctx) {
        if (p == 2) {
          // A deadline-polling straggler: spins until cancelled.
          const auto start = std::chrono::steady_clock::now();
          while (!ctx.deadline.expired()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            if (std::chrono::steady_clock::now() - start >
                std::chrono::seconds(30)) {
              break;  // safety net: the test must not hang forever
            }
          }
          throw DeadlineExceeded("point 2 cancelled");
        }
        return p;
      });
  EXPECT_EQ(engine.outcomes()[2].status, sim::SweepPointStatus::kTimedOut);
  EXPECT_EQ(engine.summary().timedOut, 1u);
  EXPECT_EQ(engine.summary().ok, 3u);
  EXPECT_EQ(results[2], 0);
}

TEST(SweepEngineResilience, SweepDeadlineMarksRemainingPointsNotRun) {
  sim::SweepOptions options;
  options.threads = 1;
  options.deadline = Deadline::after(0.05);
  options.failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  sim::SweepEngine engine(options);
  std::vector<int> points(50);
  std::iota(points.begin(), points.end(), 0);
  const auto results =
      engine.run(points, [](int p, const sim::SweepContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return p;
      });
  ASSERT_EQ(results.size(), points.size());
  const auto summary = engine.summary();
  EXPECT_GT(summary.ok, 0u);           // some points made it
  EXPECT_GT(summary.notRun, 0u);       // the budget cut off the rest
  EXPECT_LT(summary.ok, points.size());
  EXPECT_EQ(summary.ok + summary.notRun, points.size());
}

TEST(SweepEngineResilience, SweepDeadlineThrowsDeadlineExceededUnderKThrow) {
  sim::SweepOptions options;
  options.threads = 1;
  options.deadline = Deadline::after(0.05);
  sim::SweepEngine engine(options);
  std::vector<int> points(50);
  std::iota(points.begin(), points.end(), 0);
  EXPECT_THROW(engine.run(points,
                          [](int p, const sim::SweepContext&) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(20));
                            return p;
                          }),
               DeadlineExceeded);
}

TEST(SweepEngineResilience, CancelledSweepSeparatesCompletedFromFailed) {
  sim::SweepOptions options;
  options.threads = 1;  // deterministic ordering
  sim::SweepEngine engine(options);
  std::vector<int> points(10);
  std::iota(points.begin(), points.end(), 0);
  try {
    engine.run(points, [&](int p, const sim::SweepContext&) {
      if (p == 1) throw SimulationError("boom");
      if (p == 3) engine.cancel();
      return p;
    });
    FAIL() << "expected SweepCancelled";
  } catch (const sim::SweepCancelled& e) {
    EXPECT_EQ(e.completed(), 3u);  // points 0, 2, 3
    EXPECT_EQ(e.failed(), 1u);     // point 1
    EXPECT_NE(std::string(e.what()).find("3 ok"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 failed"), std::string::npos);
  }
}

TEST(SweepEngineResilience, PlainRunRejectsAJournalPath) {
  sim::SweepOptions options;
  options.journal.path = "/tmp/ignored.jsonl";
  sim::SweepEngine engine(options);
  const std::vector<int> points = {1, 2, 3};
  EXPECT_THROW(
      engine.run(points, [](int p, const sim::SweepContext&) { return p; }),
      Error);
}

// ---------------------------------------------------------------------------
// runBatched: contiguous point batches through one batch function call
// (multi-RHS style amortization), same ordering/seeding contract as run().

TEST(SweepBatched, ReturnsResultsInInputOrderAcrossBatchSizes) {
  std::vector<int> points(53);  // deliberately not a multiple of any batch
  std::iota(points.begin(), points.end(), 0);
  for (const std::size_t batchSize : {std::size_t{1}, std::size_t{4},
                                      std::size_t{16}, std::size_t{64}}) {
    SCOPED_TRACE("batchSize=" + std::to_string(batchSize));
    sim::SweepOptions options;
    options.threads = 4;
    sim::SweepEngine engine(options);
    const auto results = engine.runBatched(
        points, batchSize,
        [&](std::span<const int> batch,
            std::span<const sim::SweepContext> contexts) {
          EXPECT_EQ(batch.size(), contexts.size());
          std::vector<int> out;
          out.reserve(batch.size());
          for (std::size_t k = 0; k < batch.size(); ++k) {
            EXPECT_EQ(static_cast<std::size_t>(batch[k]), contexts[k].index);
            out.push_back(batch[k] * batch[k]);
          }
          return out;
        });
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], static_cast<int>(i * i));
    }
    EXPECT_EQ(engine.summary().ok, points.size());
  }
}

TEST(SweepBatched, SeedsAreInvariantUnderBatchSizeAndMatchRun) {
  // The whole point of per-point seeding: batching is a pure execution
  // optimization, so seeds — and anything derived from them — must match
  // the unbatched sweep exactly for every batch size.
  std::vector<int> points(40);
  std::iota(points.begin(), points.end(), 0);
  sim::SweepOptions options;
  options.threads = 4;
  options.baseSeed = 99;
  const auto viaRun = [&] {
    sim::SweepEngine engine(options);
    return engine.run(points, [](int, const sim::SweepContext& ctx) {
      stats::Rng rng(ctx.seed);
      return rng.uniform(0.0, 1.0);
    });
  }();
  for (const std::size_t batchSize : {std::size_t{3}, std::size_t{8}}) {
    sim::SweepEngine engine(options);
    const auto viaBatched = engine.runBatched(
        points, batchSize,
        [](std::span<const int> batch,
           std::span<const sim::SweepContext> contexts) {
          std::vector<double> out;
          out.reserve(batch.size());
          for (const auto& ctx : contexts) {
            stats::Rng rng(ctx.seed);
            out.push_back(rng.uniform(0.0, 1.0));
          }
          return out;
        });
    EXPECT_EQ(viaBatched, viaRun) << "batchSize=" << batchSize;
  }
}

TEST(SweepBatched, ThrowingBatchMarksEveryPointOfThatBatchFailed) {
  sim::SweepOptions options;
  options.threads = 1;  // deterministic batch order
  options.failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  sim::SweepEngine engine(options);
  std::vector<int> points(12);
  std::iota(points.begin(), points.end(), 0);
  const auto results = engine.runBatched(
      points, 4,
      [](std::span<const int> batch,
         std::span<const sim::SweepContext>) -> std::vector<int> {
        if (batch.front() == 4) throw SimulationError("batch boom");
        std::vector<int> out(batch.begin(), batch.end());
        return out;
      });
  ASSERT_EQ(results.size(), 12u);
  const auto& outcomes = engine.outcomes();
  for (std::size_t i = 0; i < 12; ++i) {
    if (i >= 4 && i < 8) {
      EXPECT_EQ(outcomes[i].status, sim::SweepPointStatus::kFailed) << i;
      EXPECT_EQ(results[i], 0) << i;  // default-constructed
    } else {
      EXPECT_EQ(outcomes[i].status, sim::SweepPointStatus::kOk) << i;
      EXPECT_EQ(results[i], static_cast<int>(i)) << i;
    }
  }
  EXPECT_EQ(engine.summary().failed, 4u);
  EXPECT_EQ(engine.summary().ok, 8u);
}

TEST(SweepBatched, WrongResultCountIsDiagnosedAsBatchFailure) {
  sim::SweepOptions options;
  options.threads = 1;
  options.failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  sim::SweepEngine engine(options);
  std::vector<int> points(6);
  std::iota(points.begin(), points.end(), 0);
  engine.runBatched(points, 3,
                    [](std::span<const int> batch,
                       std::span<const sim::SweepContext>) {
                      std::vector<int> out(batch.begin(), batch.end());
                      if (batch.front() == 3) out.pop_back();  // short batch
                      return out;
                    });
  const auto& outcomes = engine.outcomes();
  EXPECT_EQ(outcomes[0].status, sim::SweepPointStatus::kOk);
  EXPECT_EQ(outcomes[3].status, sim::SweepPointStatus::kFailed);
  EXPECT_NE(outcomes[3].message.find("2 results for 3 points"),
            std::string::npos)
      << outcomes[3].message;
}

TEST(SweepBatched, RejectsJournalingAndZeroBatchSize) {
  std::vector<int> points = {1, 2, 3};
  const auto fn = [](std::span<const int> batch,
                     std::span<const sim::SweepContext>) {
    return std::vector<int>(batch.begin(), batch.end());
  };
  {
    sim::SweepOptions options;
    options.journal.path = "/tmp/ignored.jsonl";
    sim::SweepEngine engine(options);
    EXPECT_THROW(engine.runBatched(points, 2, fn), Error);
  }
  {
    sim::SweepEngine engine;
    EXPECT_THROW(engine.runBatched(points, 0, fn), Error);
  }
}

TEST(SweepBatched, EmptyPointSetReturnsEmptyResults) {
  sim::SweepEngine engine;
  const std::vector<int> points;
  const auto results = engine.runBatched(
      points, 8,
      [](std::span<const int> batch, std::span<const sim::SweepContext>) {
        return std::vector<int>(batch.begin(), batch.end());
      });
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace fefet
