// Tests of the standalone ferroelectric capacitor dynamics and the
// P-E loop tracer (paper Fig. 1(c) / Fig. 4(b) substrate).
#include "ferro/fe_capacitor.h"
#include "ferro/pe_loop.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace fefet::ferro {
namespace {

LkCoefficients fastMaterial() {
  LkCoefficients c;
  c.rho = 1.0;
  return c;
}

FeGeometry paperGeometry(double thickness) {
  return {thickness, 65e-9 * 45e-9};
}

TEST(FeCapacitor, CoerciveVoltageScalesWithThickness) {
  const FeCapacitor thin(fastMaterial(), paperGeometry(1e-9));
  const FeCapacitor thick(fastMaterial(), paperGeometry(2.5e-9));
  EXPECT_NEAR(thin.coerciveVoltage(), 1.244, 0.01);
  EXPECT_NEAR(thick.coerciveVoltage(), 3.11, 0.02);
  // Paper Fig. 4(b): the standalone 2.5 nm film's loop extends outside
  // +/- 2 V.
  EXPECT_GT(thick.coerciveVoltage(), 2.0);
}

TEST(FeCapacitor, SwitchesAboveCoerciveVoltage) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  const double t = cap.switchingTime(1.64);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 5e-9);
}

TEST(FeCapacitor, RefusesSubCoerciveSwitching) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  EXPECT_THROW(cap.switchingTime(1.0), SimulationError);
}

TEST(FeCapacitor, SwitchingFasterAtHigherVoltage) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  EXPECT_GT(cap.switchingTime(1.5), cap.switchingTime(2.0));
  EXPECT_GT(cap.switchingTime(2.0), cap.switchingTime(2.5));
}

TEST(FeCapacitor, SwitchingTimeProportionalToRho) {
  LkCoefficients slow = fastMaterial();
  slow.rho = 2.0;
  FeCapacitor fast(fastMaterial(), paperGeometry(1e-9));
  FeCapacitor slowCap(slow, paperGeometry(1e-9));
  const double ratio = slowCap.switchingTime(1.8) / fast.switchingTime(1.8);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(FeCapacitor, PolarizationRetainedAtZeroBias) {
  FeCapacitor cap(fastMaterial(), paperGeometry(2.25e-9));
  const double pr = cap.lk().remnantPolarization();
  cap.setPolarization(pr);
  for (int i = 0; i < 100; ++i) cap.stepConstant(0.0, 1e-10);
  EXPECT_NEAR(cap.polarization(), pr, 1e-6);
  cap.setPolarization(-pr);
  for (int i = 0; i < 100; ++i) cap.stepConstant(0.0, 1e-10);
  EXPECT_NEAR(cap.polarization(), -pr, 1e-6);
}

TEST(FeCapacitor, DepolarizedStateRelaxesToWell) {
  // P = 0 is the unstable hilltop: any perturbation rolls into a well.
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  cap.setPolarization(0.01);
  for (int i = 0; i < 2000; ++i) cap.stepConstant(0.0, 1e-11);
  EXPECT_NEAR(cap.polarization(), cap.lk().remnantPolarization(), 1e-3);
}

TEST(FeCapacitor, ChargeFromPolarizationChange) {
  const FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  const double a = 65e-9 * 45e-9;
  EXPECT_DOUBLE_EQ(cap.chargeFromPolarizationChange(0.9), 0.9 * a);
}

TEST(PeLoop, FullLoopHasPaperShape) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  PeLoopOptions options;
  options.amplitude = 2.5;
  options.period = 100e-9;
  const PeLoop loop = tracePeLoop(cap, options);
  const double pr = cap.lk().remnantPolarization();
  // Saturates near the wells and retains ~P_r at zero bias.
  EXPECT_NEAR(std::abs(loop.remnantDown), pr, 0.05 * pr);
  EXPECT_NEAR(std::abs(loop.remnantUp), pr, 0.05 * pr);
  EXPECT_GT(loop.remnantDown, 0.0);
  EXPECT_LT(loop.remnantUp, 0.0);
  // Coercive voltages near the static value (slightly larger: kinetics).
  EXPECT_NEAR(loop.coerciveVoltageUp, cap.coerciveVoltage(), 0.35);
  EXPECT_NEAR(loop.coerciveVoltageDown, -cap.coerciveVoltage(), 0.35);
  EXPECT_GT(loop.coerciveVoltageUp, 0.0);
  EXPECT_LT(loop.coerciveVoltageDown, 0.0);
  // Hysteresis encloses area.
  EXPECT_GT(loop.area(), 0.5 * (2.0 * pr) * cap.coerciveVoltage());
}

TEST(PeLoop, SubCoerciveLoopIsMinor) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  PeLoopOptions minor;
  minor.amplitude = 0.6;  // well below Vc = 1.244
  minor.period = 100e-9;
  PeLoopOptions full;
  full.amplitude = 2.5;
  full.period = 100e-9;
  EXPECT_LT(tracePeLoop(cap, minor).area(),
            0.1 * tracePeLoop(cap, full).area());
}

TEST(PeLoop, SlowerSweepApproachesStaticCoercive) {
  FeCapacitor cap(fastMaterial(), paperGeometry(1e-9));
  PeLoopOptions fast;
  fast.amplitude = 2.5;
  fast.period = 20e-9;
  PeLoopOptions slow = fast;
  slow.period = 400e-9;
  const double vcFast = tracePeLoop(cap, fast).coerciveVoltageUp;
  const double vcSlow = tracePeLoop(cap, slow).coerciveVoltageUp;
  const double vcStatic = cap.coerciveVoltage();
  EXPECT_GT(vcFast, vcSlow);          // kinetics widen the loop
  EXPECT_GT(vcSlow, vcStatic * 0.98); // never below static
  EXPECT_LT(vcSlow - vcStatic, vcFast - vcStatic);
}

// Property sweep over thickness: loop coercive voltage tracks t_FE * E_c.
class LoopVsThickness : public ::testing::TestWithParam<double> {};

TEST_P(LoopVsThickness, CoerciveVoltageTracksThickness) {
  const double t = GetParam();
  FeCapacitor cap(fastMaterial(), paperGeometry(t));
  PeLoopOptions options;
  options.amplitude = 2.0 * cap.coerciveVoltage();
  options.period = 200e-9;
  const PeLoop loop = tracePeLoop(cap, options);
  EXPECT_NEAR(loop.coerciveVoltageUp, cap.coerciveVoltage(),
              0.25 * cap.coerciveVoltage());
}

INSTANTIATE_TEST_SUITE_P(Thicknesses, LoopVsThickness,
                         ::testing::Values(0.5e-9, 1e-9, 1.5e-9, 2.25e-9,
                                           3e-9));

}  // namespace
}  // namespace fefet::ferro
