// Tests of the fault-injection framework and the resilient word path:
// deterministic per-cell fault maps, degraded weak-cell device parameters,
// circuit-level stuck/transient faults on Cell2T, and the behavioral
// 64x64 macro acceptance round-trip (ISSUE: stuck cells + 5% transient
// write failures must be fully absorbed with retry + SECDED + remap, and
// must demonstrably corrupt data with the mitigations off).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cell2t.h"
#include "core/fault_model.h"
#include "core/nvm_macro.h"

namespace fefet::core {
namespace {

TEST(FaultModel, DefaultSpecInjectsNothing) {
  FaultInjector inj;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(inj.cellFault(r, c), CellFault::kNone);
    }
  }
  EXPECT_FALSE(inj.nextWriteFails());
  EXPECT_FALSE(inj.nextReadFlips(CellFault::kNone));
  EXPECT_DOUBLE_EQ(inj.retentionFactor(1e6, CellFault::kNone), 1.0);
}

TEST(FaultModel, FaultMapIsDeterministicAndOrderIndependent) {
  FaultSpec spec;
  spec.stuckAtZeroRate = 0.05;
  spec.stuckAtOneRate = 0.05;
  spec.weakCellRate = 0.10;
  spec.seed = 42;
  FaultInjector a(spec), b(spec);
  // b draws events in between; the per-cell map must not care.
  for (int k = 0; k < 17; ++k) b.nextWriteFails();
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      EXPECT_EQ(a.cellFault(r, c), b.cellFault(r, c)) << r << "," << c;
      EXPECT_EQ(a.cellFault(r, c), a.cellFault(r, c));  // idempotent
    }
  }
  // A different seed yields a different map.
  spec.seed = 43;
  FaultInjector other(spec);
  int differs = 0;
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      differs += other.cellFault(r, c) != a.cellFault(r, c);
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultModel, FaultRatesAreHonoredStatistically) {
  FaultSpec spec;
  spec.stuckAtZeroRate = 0.02;
  spec.stuckAtOneRate = 0.01;
  spec.weakCellRate = 0.05;
  spec.seed = 7;
  FaultInjector inj(spec);
  int s0 = 0, s1 = 0, weak = 0;
  const int n = 200;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      switch (inj.cellFault(r, c)) {
        case CellFault::kStuckAtZero: ++s0; break;
        case CellFault::kStuckAtOne: ++s1; break;
        case CellFault::kWeak: ++weak; break;
        case CellFault::kNone: break;
      }
    }
  }
  const double cells = static_cast<double>(n) * n;
  EXPECT_NEAR(s0 / cells, 0.02, 0.005);
  EXPECT_NEAR(s1 / cells, 0.01, 0.004);
  EXPECT_NEAR(weak / cells, 0.05, 0.008);
}

TEST(FaultModel, WeakCellsGetCollapsedWindowParameters) {
  FaultSpec spec;
  spec.weakCellRate = 1.0;
  FaultInjector inj(spec);
  const FefetParams nominal;
  const auto weak = inj.apply(nominal, CellFault::kWeak);
  // alpha is negative; scaling toward zero shrinks P_r and the barrier.
  EXPECT_LT(nominal.lk.alpha, 0.0);
  EXPECT_GT(weak.lk.alpha, nominal.lk.alpha);
  EXPECT_NEAR(weak.lk.alpha, nominal.lk.alpha * spec.weakAlphaFraction,
              1e-12);
  EXPECT_NEAR(weak.mos.vt0, nominal.mos.vt0 + spec.weakVtShift, 1e-12);
  // Stuck classes are pinned behaviorally: parameters untouched.
  const auto stuck = inj.apply(nominal, CellFault::kStuckAtZero);
  EXPECT_DOUBLE_EQ(stuck.lk.alpha, nominal.lk.alpha);
}

TEST(FaultModel, RetentionDecaysFasterForWeakCells) {
  FaultSpec spec;
  spec.retentionDecayPerSecond = 1e-3;
  FaultInjector inj(spec);
  const double healthy = inj.retentionFactor(100.0, CellFault::kNone);
  const double weak = inj.retentionFactor(100.0, CellFault::kWeak);
  EXPECT_LT(healthy, 1.0);
  EXPECT_GT(healthy, 0.0);
  EXPECT_LT(weak, healthy);
  EXPECT_DOUBLE_EQ(inj.retentionFactor(0.0, CellFault::kNone), 1.0);
}

TEST(FaultModel, BoostedWritesFailLess) {
  FaultSpec spec;
  spec.writeFailureProbability = 0.5;
  spec.seed = 11;
  FaultInjector plain(spec), boosted(spec);
  int plainFails = 0, boostedFails = 0;
  for (int k = 0; k < 2000; ++k) {
    plainFails += plain.nextWriteFails(1.0);
    boostedFails += boosted.nextWriteFails(2.0);  // p/4 effective
  }
  EXPECT_NEAR(plainFails / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(boostedFails / 2000.0, 0.125, 0.04);
}

TEST(FaultModel, RejectsInvalidRates) {
  FaultSpec spec;
  spec.stuckAtZeroRate = 0.7;
  spec.stuckAtOneRate = 0.7;  // sum > 1
  EXPECT_THROW(FaultInjector{spec}, InvalidArgumentError);
  FaultSpec neg;
  neg.writeFailureProbability = -0.1;
  EXPECT_THROW(FaultInjector{neg}, InvalidArgumentError);
}

// --- circuit level -------------------------------------------------------

TEST(FaultModelCircuit, StuckAtZeroCellIgnoresWrites) {
  Cell2TConfig cfg;
  cfg.faults.stuckAtZeroRate = 1.0;
  Cell2T cell(cfg);
  EXPECT_EQ(cell.fault(), CellFault::kStuckAtZero);
  const auto res = cell.write(true, 20e-9);
  EXPECT_TRUE(res.faultInjected);
  EXPECT_FALSE(res.bitAfter);
  EXPECT_FALSE(cell.storedBit());
}

TEST(FaultModelCircuit, StuckAtOneCellIgnoresErase) {
  Cell2TConfig cfg;
  cfg.faults.stuckAtOneRate = 1.0;
  Cell2T cell(cfg);
  EXPECT_EQ(cell.fault(), CellFault::kStuckAtOne);
  cell.setStoredBit(false);        // pinning wins: still reads 1
  EXPECT_TRUE(cell.storedBit());
  const auto res = cell.write(false, 20e-9);
  EXPECT_TRUE(res.faultInjected);
  EXPECT_TRUE(res.bitAfter);
}

TEST(FaultModelCircuit, TransientWriteFailureRevertsThePulse) {
  Cell2TConfig cfg;
  cfg.faults.writeFailureProbability = 1.0;  // every pulse fails
  Cell2T cell(cfg);
  EXPECT_EQ(cell.fault(), CellFault::kNone);
  cell.setStoredBit(false);
  const auto res = cell.write(true, 20e-9);
  EXPECT_TRUE(res.faultInjected);
  EXPECT_FALSE(res.bitAfter);
  EXPECT_FALSE(cell.storedBit());
}

TEST(FaultModelCircuit, WeakCellStillBistableAtDesignPoint) {
  // The default collapse keeps the T_FE = 2.25 nm design point nonvolatile
  // (the Cell2T constructor requires bistability at V_G = 0).
  Cell2TConfig cfg;
  cfg.faults.weakCellRate = 1.0;
  Cell2T cell(cfg);
  EXPECT_EQ(cell.fault(), CellFault::kWeak);
  cell.setStoredBit(true);
  EXPECT_TRUE(cell.storedBit());
  cell.setStoredBit(false);
  EXPECT_FALSE(cell.storedBit());
}

// --- behavioral macro: the 64x64 acceptance round-trip -------------------

MacroConfig macro64() {
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  return cfg;
}

std::uint32_t patternWord(int i) {
  return static_cast<std::uint32_t>(0x9E3779B9u * (i + 1));
}

TEST(FaultModelMacro, Acceptance64x64RoundTripWithResilience) {
  MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtZeroRate = 5e-4;
  res.faults.stuckAtOneRate = 5e-4;   // 1e-3 total stuck rate
  res.faults.writeFailureProbability = 0.05;
  res.faults.seed = 2016;
  res.retry.maxRetries = 3;
  res.eccEnabled = true;
  res.spareWords = 8;
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);

  std::vector<std::uint32_t> written;
  for (int i = 0; i < macro.wordCount(); ++i) {
    written.push_back(patternWord(i));
    ASSERT_NO_THROW(macro.writeWord(i, written.back()));
  }
  int mismatches = 0;
  for (int i = 0; i < macro.wordCount(); ++i) {
    mismatches += macro.readWord(i).value != written[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(mismatches, 0);
  const auto& report = macro.report();
  EXPECT_EQ(report.uncorrectedBits, 0);
  EXPECT_TRUE(report.clean()) << report.summary();
  // The 5% transient failure rate must actually have exercised the ladder.
  EXPECT_GT(report.writeRetries, 0);
  EXPECT_GT(report.retryEnergy, 0.0);
}

TEST(FaultModelMacro, SameFaultsCorruptDataWithMitigationsOff) {
  MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtZeroRate = 5e-4;
  res.faults.stuckAtOneRate = 5e-4;
  res.faults.writeFailureProbability = 0.05;
  res.faults.seed = 2016;
  res.retry.maxRetries = 0;  // mitigations off
  res.eccEnabled = false;
  res.spareWords = 0;
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);

  int mismatches = 0;
  for (int i = 0; i < macro.wordCount(); ++i) {
    macro.writeWord(i, patternWord(i));
  }
  for (int i = 0; i < macro.wordCount(); ++i) {
    mismatches += macro.readWord(i).value != patternWord(i);
  }
  EXPECT_GT(mismatches, 0);
  EXPECT_GT(macro.report().uncorrectedBits, 0);
  EXPECT_FALSE(macro.report().clean());
}

TEST(FaultModelMacro, WeakCellReadUpsetsAreCorrectedByEcc) {
  MacroResilience res;
  res.enabled = true;
  res.faults.weakCellRate = 2e-3;
  res.faults.weakReadFlipProbability = 0.05;
  res.faults.seed = 5;
  res.retry.maxRetries = 2;
  res.eccEnabled = true;
  res.spareWords = 4;
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);
  for (int i = 0; i < macro.wordCount(); ++i) {
    macro.writeWord(i, patternWord(i));
  }
  int mismatches = 0;
  for (int pass = 0; pass < 20; ++pass) {
    for (int i = 0; i < macro.wordCount(); ++i) {
      mismatches += macro.readWord(i).value != patternWord(i);
    }
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(macro.report().correctedBits, 0) << macro.report().summary();
  EXPECT_EQ(macro.report().uncorrectedBits, 0);
}

TEST(FaultModelMacro, DisabledResilienceKeepsLegacyBehavior) {
  NvmMacro plain(MacroTechnology::kFefet, macro64());
  EXPECT_EQ(plain.wordCount(), 64 * 64 / 32);
  plain.writeWord(0, 0xDEADBEEFu);
  EXPECT_EQ(plain.readWord(0).value, 0xDEADBEEFu);
  EXPECT_EQ(plain.report().wordWrites, 0);  // ledger untouched
}

TEST(FaultModelMacro, StoredWordsCarryCheckBitOverhead) {
  MacroResilience res;
  res.enabled = true;
  res.eccEnabled = true;
  res.spareWords = 2;
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);
  EXPECT_EQ(macro.storedBitsPerWord(), 39);  // (39,32) SECDED
  EXPECT_EQ(macro.wordCount(), 64 * 64 / 39 - 2);
}

}  // namespace
}  // namespace fefet::core
