// Tests of the serving layer (src/serve): deterministic chaos streams,
// the crash-consistent shard store (power failure at every truncation
// point), admission control with brownout hysteresis, and the MacroService
// front-end (async completions, deadlines, retries, wear-aware routing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/request.h"
#include "serve/service.h"
#include "serve/shard_store.h"

namespace fefet::serve {
namespace {

ShardStoreConfig smallStore(int dataWords = 16, int ringSlots = 4) {
  ShardStoreConfig cfg;
  cfg.dataWords = dataWords;
  cfg.ringSlots = ringSlots;
  cfg.macro.rows = 64;
  cfg.macro.cols = 64;
  return cfg;
}

// --- chaos ----------------------------------------------------------------

TEST(StormStream, DeterministicPerSeedShardOrdinal) {
  StormConfig cfg;
  cfg.opFailProbability = 0.5;
  cfg.seed = 42;
  StormStream a(cfg, 3);
  StormStream b(cfg, 3);
  StormStream other(cfg, 4);
  int hits = 0;
  int diverged = 0;
  for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
    const auto da = a.draw(ordinal, 7);
    const auto db = b.draw(ordinal, 7);
    ASSERT_EQ(da.has_value(), db.has_value()) << ordinal;
    if (da) {
      ++hits;
      EXPECT_EQ(da->failAfterWords, db->failAfterWords);
      EXPECT_EQ(da->tearMask, db->tearMask);
      EXPECT_GE(da->failAfterWords, 0);
      EXPECT_LT(da->failAfterWords, 7);
    }
    if (da.has_value() != other.draw(ordinal, 7).has_value()) ++diverged;
  }
  EXPECT_GT(hits, 60);   // p = 0.5 over 200 draws
  EXPECT_LT(hits, 140);
  EXPECT_GT(diverged, 0);  // different shards get different streams
}

TEST(StormStream, ProbabilityEndpoints) {
  StormConfig cfg;
  cfg.seed = 7;
  StormStream s(cfg, 0);
  for (std::uint64_t ordinal = 0; ordinal < 50; ++ordinal) {
    EXPECT_FALSE(s.draw(ordinal, 5, 0.0).has_value());
    EXPECT_TRUE(s.draw(ordinal, 5, 1.0).has_value());
  }
}

// --- shard store ----------------------------------------------------------

TEST(ShardStore, WriteReadRoundTripAndSequence) {
  ShardStore store(smallStore());
  const auto r1 = store.write(3, 0xAABBCCDDu);
  EXPECT_TRUE(r1.acked);
  EXPECT_EQ(r1.seq, 1u);
  const auto r2 = store.write(7, 0x11223344u);
  EXPECT_EQ(r2.seq, 2u);
  EXPECT_EQ(store.read(3), 0xAABBCCDDu);
  EXPECT_EQ(store.read(7), 0x11223344u);
  EXPECT_EQ(store.read(0), 0u);
  EXPECT_EQ(store.stats().writes, 2u);
  EXPECT_EQ(store.stats().reads, 3u);
}

TEST(ShardStore, ForcedCheckpointRetiresRingBeforeWrap) {
  auto cfg = smallStore(/*dataWords=*/8, /*ringSlots=*/4);
  ShardStore store(cfg);
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(store.write(k % cfg.dataWords, 0x1000u + k).acked);
  }
  EXPECT_GT(store.stats().forcedCheckpoints, 0u);
  // Every written value still served correctly after the wraps.
  for (int k = 2; k < 10; ++k) {
    EXPECT_EQ(store.read(k % cfg.dataWords), 0x1000u + static_cast<unsigned>(k));
  }
}

TEST(ShardStore, PowerFailAtEveryTruncationPointLosesNoAckedWrite) {
  // Drive the store through writes with an injected power failure at
  // every possible word boundary (including forced-checkpoint words and
  // a torn in-flight word), recovering each time.  Invariants: every
  // previously ACKED value is served after recovery, and no address ever
  // serves a torn word (value must be the acked value or, for the
  // interrupted op's target, old-or-new — never a mix).
  auto cfg = smallStore(/*dataWords=*/8, /*ringSlots=*/4);
  ShardStore store(cfg);
  std::map<int, std::uint32_t> oracle;  // acked values
  std::uint32_t salt = 1;
  int failures = 0;
  for (int round = 0; round < 60; ++round) {
    const int address = round % cfg.dataWords;
    const std::uint32_t value = 0xC0DE0000u + salt++;
    const int opWords = store.nextWriteOpWords();
    PowerFailPoint fail;
    fail.failAfterWords = round % (opWords + 1);  // opWords = no failure
    fail.tearMask = 0x0F0F0F0Fu * (static_cast<std::uint32_t>(round) & 1u);
    const bool inject = fail.failAfterWords < opWords;
    const auto result =
        store.write(address, value, inject ? &fail : nullptr);
    if (result.acked) {
      oracle[address] = value;
      EXPECT_FALSE(store.failed());
      continue;
    }
    ASSERT_TRUE(inject);
    ASSERT_TRUE(result.powerFailed);
    ASSERT_TRUE(store.failed());
    ++failures;
    const auto report = store.recover();
    EXPECT_FALSE(store.failed());
    // The interrupted op may or may not have become durable (its ring
    // entry may have committed); either full-old or full-new is legal.
    const std::uint32_t got = store.read(address);
    const std::uint32_t old = oracle.count(address) ? oracle[address] : 0u;
    EXPECT_TRUE(got == old || got == value)
        << "torn word served at round " << round << ": got " << std::hex
        << got << " old " << old << " new " << value;
    if (got == value) oracle[address] = value;
    // Every other acked word must read back exactly.
    for (const auto& [a, v] : oracle) {
      if (a == address) continue;
      EXPECT_EQ(store.read(a), v) << "acked write lost at round " << round;
    }
    (void)report;
  }
  EXPECT_GT(failures, 10);
  EXPECT_GT(store.stats().recoveries, 0u);
}

TEST(ShardStore, CheckpointInterruptionKeepsPreviousImage) {
  auto cfg = smallStore(/*dataWords=*/6, /*ringSlots=*/8);
  ShardStore store(cfg);
  for (int a = 0; a < 6; ++a) ASSERT_TRUE(store.write(a, 0x500u + a).acked);
  ASSERT_TRUE(store.checkpoint());
  // Interrupt an explicit checkpoint at an early word: double banking
  // must keep the committed image; recovery serves every acked value.
  PowerFailPoint fail;
  fail.failAfterWords = 2;
  fail.tearMask = 0xFFFF0000u;
  EXPECT_FALSE(store.checkpoint(&fail));
  EXPECT_TRUE(store.failed());
  store.recover();
  for (int a = 0; a < 6; ++a) {
    EXPECT_EQ(store.read(a), 0x500u + static_cast<unsigned>(a));
  }
}

TEST(ShardStore, RejectsOpsWhileDown) {
  ShardStore store(smallStore());
  PowerFailPoint fail;
  fail.failAfterWords = 0;
  ASSERT_FALSE(store.write(0, 1, &fail).acked);
  EXPECT_THROW(store.write(1, 2), InvalidArgumentError);
  EXPECT_THROW(store.read(0), InvalidArgumentError);
  store.recover();
  EXPECT_TRUE(store.write(1, 2).acked);
}

// --- admission ------------------------------------------------------------

TEST(Admission, BoundedQueueShedsWithRetryAfter) {
  AdmissionConfig cfg;
  cfg.queueCapacityPerShard = 4;
  cfg.classShare[0] = 1.0;
  cfg.classShare[1] = 1.0;
  AdmissionController ctl(cfg, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctl.admit(OpType::kWrite, TrafficClass::kCacheMode, 0),
              AdmitDecision::kAdmit);
  }
  EXPECT_EQ(ctl.admit(OpType::kWrite, TrafficClass::kCacheMode, 0),
            AdmitDecision::kShedOverload);
  EXPECT_GT(ctl.retryAfterSeconds(0), cfg.retryAfterBaseSeconds);
  // The other shard's queue is independent.
  EXPECT_EQ(ctl.admit(OpType::kWrite, TrafficClass::kCacheMode, 1),
            AdmitDecision::kAdmit);
  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.admitted[0], 5u);
  EXPECT_EQ(snap.shedOverload[0], 1u);
}

TEST(Admission, ClassQuotaProtectsTheOtherClass) {
  AdmissionConfig cfg;
  cfg.queueCapacityPerShard = 10;
  cfg.classShare[0] = 0.5;  // cache-mode floor: 5 slots
  cfg.classShare[1] = 0.5;
  AdmissionController ctl(cfg, 1);
  int cacheAdmitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (ctl.admit(OpType::kWrite, TrafficClass::kCacheMode, 0) ==
        AdmitDecision::kAdmit) {
      ++cacheAdmitted;
    }
  }
  EXPECT_EQ(cacheAdmitted, 5);  // quota, not the whole queue
  // Storage-mode traffic still has room despite the cache-mode flood.
  EXPECT_EQ(ctl.admit(OpType::kWrite, TrafficClass::kStorageMode, 0),
            AdmitDecision::kAdmit);
}

TEST(Admission, BrownoutHysteresisEntersAndExitsOnce) {
  AdmissionConfig cfg;
  cfg.queueCapacityPerShard = 10;
  cfg.classShare[0] = 1.0;
  cfg.classShare[1] = 1.0;
  cfg.brownoutEnterUtilization = 0.8;
  cfg.brownoutExitUtilization = 0.3;
  AdmissionController ctl(cfg, 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(ctl.admit(OpType::kRead, TrafficClass::kCacheMode, 0),
              AdmitDecision::kAdmit);
  }
  EXPECT_TRUE(ctl.readOnly());
  // In brownout: reads flow, writes and checkpoints shed.
  EXPECT_EQ(ctl.admit(OpType::kWrite, TrafficClass::kStorageMode, 0),
            AdmitDecision::kShedReadOnly);
  EXPECT_EQ(ctl.admit(OpType::kCheckpoint, TrafficClass::kStorageMode, 0),
            AdmitDecision::kShedReadOnly);
  EXPECT_EQ(ctl.admit(OpType::kRead, TrafficClass::kStorageMode, 0),
            AdmitDecision::kAdmit);
  // Draining to just above the exit threshold keeps read-only latched
  // (hysteresis); crossing it exits exactly once.
  for (int i = 0; i < 5; ++i) ctl.release(TrafficClass::kCacheMode, 0);
  EXPECT_TRUE(ctl.readOnly());
  for (int i = 0; i < 3; ++i) ctl.release(TrafficClass::kCacheMode, 0);
  ctl.release(TrafficClass::kStorageMode, 0);
  EXPECT_FALSE(ctl.readOnly());
  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.brownoutEntries, 1u);
  EXPECT_EQ(snap.brownoutExits, 1u);
  EXPECT_EQ(snap.shedReadOnly[1], 2u);
}

TEST(Admission, RejectsBrokenConfigs) {
  AdmissionConfig cfg;
  cfg.brownoutEnterUtilization = 0.3;
  cfg.brownoutExitUtilization = 0.5;  // no hysteresis
  EXPECT_THROW(AdmissionController(cfg, 1), InvalidArgumentError);
  AdmissionConfig ok;
  EXPECT_THROW(AdmissionController(ok, 0), InvalidArgumentError);
  EXPECT_THROW(AdmissionController(ok, 65), InvalidArgumentError);
}

// --- service --------------------------------------------------------------

ServiceConfig smallService(int shards = 2) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.store = smallStore(/*dataWords=*/32, /*ringSlots=*/8);
  cfg.admission.queueCapacityPerShard = 256;
  return cfg;
}

Response submitAndWait(MacroService& service, const Request& request) {
  std::optional<Response> out;
  service.submit(request, [&](const Response& r) { out = r; });
  service.drain();
  EXPECT_TRUE(out.has_value());
  return out.value_or(Response{});
}

TEST(MacroService, WriteReadRoundTripWithAcks) {
  MacroService service(smallService());
  Request w;
  w.op = OpType::kWrite;
  w.address = 11;
  w.value = 0xFEEDBEEFu;
  const auto wr = submitAndWait(service, w);
  EXPECT_EQ(wr.status, Status::kOk);
  EXPECT_GT(wr.ackSeq, 0u);
  EXPECT_EQ(wr.attempts, 1);
  EXPECT_GE(wr.shard, 0);
  Request r;
  r.op = OpType::kRead;
  r.address = 11;
  const auto rr = submitAndWait(service, r);
  EXPECT_EQ(rr.status, Status::kOk);
  EXPECT_EQ(rr.value, 0xFEEDBEEFu);
  EXPECT_EQ(rr.shard, wr.shard);
  // Unmapped key: reads as zero without touching a shard.
  Request u;
  u.op = OpType::kRead;
  u.address = 9999;
  const auto ur = submitAndWait(service, u);
  EXPECT_EQ(ur.status, Status::kOk);
  EXPECT_EQ(ur.value, 0u);
  EXPECT_EQ(ur.shard, -1);
  service.stop();
}

TEST(MacroService, CheckpointOpCommitsOnTheTargetShard) {
  MacroService service(smallService(2));
  Request w;
  w.op = OpType::kWrite;
  w.address = 4;
  w.value = 77;
  ASSERT_EQ(submitAndWait(service, w).status, Status::kOk);
  Request c;
  c.op = OpType::kCheckpoint;
  c.address = static_cast<std::uint64_t>(service.shardOf(4));
  EXPECT_EQ(submitAndWait(service, c).status, Status::kOk);
  service.drain();
  EXPECT_GE(service.stats().checkpoints, 1u);
  service.stop();
}

TEST(MacroService, TinyDeadlineExpiresInsteadOfServing) {
  MacroService service(smallService(1));
  Request r;
  r.op = OpType::kWrite;
  r.address = 1;
  r.value = 5;
  r.budgetSeconds = 1e-12;  // expires before any worker can run it
  const auto resp = submitAndWait(service, r);
  EXPECT_EQ(resp.status, Status::kDeadlineExpired);
  EXPECT_EQ(service.stats().deadlineExpired, 1u);
  service.stop();
}

TEST(MacroService, StormySubmissionNeverLosesAckedWrites) {
  auto cfg = smallService(2);
  cfg.storm.opFailProbability = 0.3;
  cfg.storm.seed = 2026;
  cfg.maxAttempts = 8;
  cfg.retryBackoffSeconds = 1e-6;
  MacroService service(cfg);
  constexpr std::uint64_t kKeys = 48;
  // One slot per key: each completion (worker thread) writes only its own
  // slot, and drain() provides the happens-before for reading them here.
  std::vector<char> acked(kKeys, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    Request w;
    w.op = OpType::kWrite;
    w.address = key;
    w.value = 0xAB000000u + static_cast<std::uint32_t>(key);
    service.submit(w, [&acked, key](const Response& r) {
      if (r.ok()) acked[key] = 1;
    });
  }
  service.drain();
  const auto stats = service.stats();
  EXPECT_GT(stats.powerFails, 0u) << "storm did not fire; weak test";
  EXPECT_GT(stats.recoveries, 0u);
  std::uint64_t ackedCount = 0;
  for (const char f : acked) ackedCount += static_cast<std::uint64_t>(f);
  EXPECT_EQ(stats.ackedWrites, ackedCount);
  // Every acknowledged write must be served back exactly; non-acked keys
  // must read all-old or all-new, never torn.
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::uint32_t value = 0xAB000000u + static_cast<std::uint32_t>(key);
    Request r;
    r.op = OpType::kRead;
    r.address = key;
    const auto resp = submitAndWait(service, r);
    ASSERT_EQ(resp.status, Status::kOk) << key;
    if (acked[key]) {
      EXPECT_EQ(resp.value, value) << "acked write lost, key " << key;
    } else {
      EXPECT_TRUE(resp.value == 0u || resp.value == value)
          << "torn word served, key " << key;
    }
  }
  service.stop();
}

TEST(MacroService, WearAwareRoutingSteersNewKeysOffWornShards) {
  auto cfg = smallService(2);
  cfg.wearSteerFactor = 2.0;
  cfg.wearSteerFloor = 64.0;
  MacroService service(cfg);
  // Key 0 lands on shard 0 by default; hammer it until shard 0's
  // endurance meter is far above shard 1's.
  Request w;
  w.op = OpType::kWrite;
  w.address = 0;
  for (int i = 0; i < 400; ++i) {
    w.value = static_cast<std::uint32_t>(i);
    service.submit(w, nullptr);
  }
  service.drain();
  ASSERT_EQ(service.shardOf(0), 0);
  // A NEW key whose default owner is the worn shard 0 must be steered to
  // the idle shard 1.
  Request fresh;
  fresh.op = OpType::kWrite;
  fresh.address = 2;  // 2 % 2 == 0: default owner is the worn shard
  fresh.value = 123;
  const auto resp = submitAndWait(service, fresh);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.shard, 1);
  EXPECT_EQ(service.shardOf(2), 1);
  EXPECT_GE(service.stats().steeredWrites, 1u);
  // The mapping is sticky: the next write of the same key follows it.
  fresh.value = 124;
  EXPECT_EQ(submitAndWait(service, fresh).shard, 1);
  service.stop();
}

TEST(MacroService, OverloadShedsSynchronouslyWithBackpressureHint) {
  auto cfg = smallService(1);
  cfg.admission.queueCapacityPerShard = 2;
  cfg.admission.classShare[0] = 1.0;
  cfg.admission.classShare[1] = 1.0;
  // Keep brownout out of the way: this test isolates the overload path
  // (a full queue at 100% utilization would otherwise latch read-only).
  cfg.admission.brownoutEnterUtilization = 2.0;
  cfg.admission.brownoutExitUtilization = 0.5;
  // Stall the worker with a deep backlog of slow (retrying) writes so the
  // queue genuinely fills: storm every op, long backoff.
  cfg.storm.opFailProbability = 1.0;
  cfg.maxAttempts = 4;
  cfg.retryBackoffSeconds = 2e-3;
  cfg.retryBackoffMaxSeconds = 10e-3;
  MacroService service(cfg);
  int shed = 0;
  double hint = 0.0;
  for (int i = 0; i < 32; ++i) {
    Request w;
    w.op = OpType::kWrite;
    w.address = static_cast<std::uint64_t>(i);
    w.value = 1;
    service.submit(w, [&](const Response& r) {
      if (r.status == Status::kRejectedOverload) {
        ++shed;  // synchronous: runs on this thread before submit returns
        hint = r.retryAfterSeconds;
      }
    });
  }
  EXPECT_GT(shed, 0);
  EXPECT_GT(hint, 0.0);
  service.drain();
  EXPECT_EQ(service.stats().shedOverload, static_cast<std::uint64_t>(shed));
  service.stop();
}

TEST(MacroService, StopCancelsQueuedRequestsExactlyOnce) {
  auto cfg = smallService(1);
  cfg.storm.opFailProbability = 1.0;  // every op retries: queue backs up
  cfg.maxAttempts = 4;
  cfg.retryBackoffSeconds = 2e-3;
  MacroService service(cfg);
  std::atomic<int> completions{0};
  for (int i = 0; i < 16; ++i) {
    Request w;
    w.op = OpType::kWrite;
    w.address = static_cast<std::uint64_t>(i);
    w.value = 1;
    service.submit(w, [&](const Response&) {
      completions.fetch_add(1, std::memory_order_relaxed);
    });
  }
  service.stop();
  service.drain();
  EXPECT_EQ(completions.load(), 16);  // exactly once each, no lost callbacks
}

}  // namespace
}  // namespace fefet::serve
