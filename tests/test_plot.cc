// Tests of the ASCII chart renderer.
#include <cmath>
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/plot.h"

namespace fefet::plot {
namespace {

Series ramp() {
  Series s;
  s.label = "ramp";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(2.0 * i);
  }
  return s;
}

TEST(Chart, RendersMarkersAndAxes) {
  std::ostringstream os;
  ChartOptions options;
  options.title = "a ramp";
  options.xLabel = "t";
  renderChart(os, {ramp()}, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("a ramp"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
  EXPECT_NE(out.find(" t"), std::string::npos);
  // Min and max y ticks present.
  EXPECT_NE(out.find("0"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Chart, MultipleSeriesGetDistinctMarkers) {
  Series a = ramp();
  Series b = ramp();
  b.label = "flat";
  std::fill(b.y.begin(), b.y.end(), 5.0);
  std::ostringstream os;
  renderChart(os, {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find("[*] ramp"), std::string::npos);
  EXPECT_NE(out.find("[+] flat"), std::string::npos);
}

TEST(Chart, LogScaleHandlesDecades) {
  Series s;
  s.label = "decades";
  for (int i = 0; i <= 6; ++i) {
    s.x.push_back(i);
    s.y.push_back(std::pow(10.0, i));
  }
  std::ostringstream os;
  ChartOptions options;
  options.logY = true;
  renderChart(os, {s}, options);
  EXPECT_NE(os.str().find("1e+06"), std::string::npos);
}

TEST(Chart, RejectsEmptyAndMismatched) {
  std::ostringstream os;
  EXPECT_THROW(renderChart(os, {}), InvalidArgumentError);
  Series bad;
  bad.x = {1.0};
  EXPECT_THROW(renderChart(os, {bad}), InvalidArgumentError);
}

TEST(Bars, ScaledToWidest) {
  std::ostringstream os;
  renderBars(os, {{"feram", 0.25}, {"fefet", 0.5}}, "fp", 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("fefet |####################"), std::string::npos);
  EXPECT_NE(out.find("feram |##########"), std::string::npos);
}

TEST(Bars, RejectsEmpty) {
  std::ostringstream os;
  EXPECT_THROW(renderBars(os, {}), InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::plot
