// Unit tests for the Landau-Khalatnikov statics (ferro/lk_model.h).
// The oracles come from the paper's Table 2 coefficient set (DESIGN.md §5):
//   P_r ~ 0.4636 C/m^2, E_c ~ 1.2435 GV/m (1.24 V per nm of film).
#include "ferro/lk_model.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace fefet::ferro {
namespace {

TEST(LkModel, RemnantPolarizationMatchesTable2) {
  LandauKhalatnikov lk{LkCoefficients{}};
  EXPECT_NEAR(lk.remnantPolarization(), 0.4636, 2e-4);
}

TEST(LkModel, CoerciveFieldMatchesTable2) {
  LandauKhalatnikov lk{LkCoefficients{}};
  EXPECT_NEAR(lk.coerciveField(), 1.2435e9, 2e6);
  // Coercive voltage of a 1 nm film: the paper quotes 1.26 V.
  EXPECT_NEAR(lk.coerciveField() * 1e-9, 1.24, 0.03);
}

TEST(LkModel, StaticFieldIsOddFunction) {
  LandauKhalatnikov lk{LkCoefficients{}};
  for (double p : {0.05, 0.2, 0.4}) {
    EXPECT_DOUBLE_EQ(lk.staticField(p), -lk.staticField(-p));
  }
}

TEST(LkModel, StaticFieldZeroAtWellAndOrigin) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const double pr = lk.remnantPolarization();
  EXPECT_NEAR(lk.staticField(pr), 0.0, 1.0);
  EXPECT_DOUBLE_EQ(lk.staticField(0.0), 0.0);
}

TEST(LkModel, SlopeNegativeAtOriginPositiveAtWell) {
  // Negative capacitance region around P = 0; restoring at the wells.
  LandauKhalatnikov lk{LkCoefficients{}};
  EXPECT_LT(lk.staticFieldSlope(0.0), 0.0);
  EXPECT_GT(lk.staticFieldSlope(lk.remnantPolarization()), 0.0);
}

TEST(LkModel, SlopeMatchesFiniteDifference) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const double h = 1e-6;
  for (double p : {-0.4, -0.1, 0.0, 0.15, 0.3, 0.46}) {
    const double numeric =
        (lk.staticField(p + h) - lk.staticField(p - h)) / (2.0 * h);
    EXPECT_NEAR(lk.staticFieldSlope(p), numeric, std::abs(numeric) * 1e-5 + 1.0);
  }
}

TEST(LkModel, EnergyDoubleWell) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const double pr = lk.remnantPolarization();
  EXPECT_LT(lk.energyDensity(pr), lk.energyDensity(0.0));
  EXPECT_LT(lk.energyDensity(-pr), lk.energyDensity(0.0));
  EXPECT_NEAR(lk.energyDensity(pr), lk.energyDensity(-pr), 1e-3);
  EXPECT_GT(lk.wellBarrier(), 0.0);
  // DESIGN.md §5: barrier ~ 3.74e8 J/m^3 for the Table 2 set.
  EXPECT_NEAR(lk.wellBarrier(), 3.745e8, 5e6);
}

TEST(LkModel, EnergyGradientIsStaticField) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const double h = 1e-7;
  for (double p : {0.1, 0.25, 0.4}) {
    const double numeric =
        (lk.energyDensity(p + h) - lk.energyDensity(p - h)) / (2.0 * h);
    EXPECT_NEAR(numeric, lk.staticField(p), std::abs(lk.staticField(p)) * 1e-4);
  }
}

TEST(LkModel, DynamicFieldAddsViscousTerm) {
  LkCoefficients c;
  c.rho = 2.0;
  LandauKhalatnikov lk{c};
  EXPECT_DOUBLE_EQ(lk.dynamicField(0.1, 5.0),
                   lk.staticField(0.1) + 2.0 * 5.0);
}

TEST(LkModel, StaticPolarizationsCountVsField) {
  LandauKhalatnikov lk{LkCoefficients{}};
  // Below the coercive field: three solutions (bistable); above: one.
  EXPECT_EQ(lk.staticPolarizations(0.0).size(), 3u);
  EXPECT_EQ(lk.staticPolarizations(0.5 * lk.coerciveField()).size(), 3u);
  EXPECT_EQ(lk.staticPolarizations(1.5 * lk.coerciveField()).size(), 1u);
}

TEST(LkModel, ParaelectricSetRejected) {
  LkCoefficients c;
  c.alpha = +1e9;  // positive alpha: no double well
  c.gamma = 0.0;
  LandauKhalatnikov lk{c};
  EXPECT_FALSE(lk.isFerroelectric());
  EXPECT_THROW(lk.remnantPolarization(), InvalidArgumentError);
}

TEST(LkModel, RejectsNonPositiveRho) {
  LkCoefficients c;
  c.rho = 0.0;
  EXPECT_THROW(LandauKhalatnikov{c}, InvalidArgumentError);
}

TEST(LkModel, CoercivePolarizationBetweenZeroAndPr) {
  LandauKhalatnikov lk{LkCoefficients{}};
  const double pc = lk.coercivePolarization();
  EXPECT_GT(pc, 0.0);
  EXPECT_LT(pc, lk.remnantPolarization());
  EXPECT_NEAR(pc, 0.2669, 1e-3);
}

// Property: coercive field grows as |alpha| grows (harder material).
class CoerciveVsAlpha : public ::testing::TestWithParam<double> {};

TEST_P(CoerciveVsAlpha, MonotoneInAlphaMagnitude) {
  LkCoefficients weak;
  weak.alpha = -GetParam();
  LkCoefficients strong = weak;
  strong.alpha = -GetParam() * 1.3;
  EXPECT_LT(LandauKhalatnikov(weak).coerciveField(),
            LandauKhalatnikov(strong).coerciveField());
}

INSTANTIATE_TEST_SUITE_P(AlphaMagnitudes, CoerciveVsAlpha,
                         ::testing::Values(3e9, 5e9, 7e9, 9e9));

}  // namespace
}  // namespace fefet::ferro
