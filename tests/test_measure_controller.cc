// Tests of the waveform measurement utilities and the word-level memory
// controller (circuit-level verify-after-write).
#include <cmath>
#include <gtest/gtest.h>

#include "core/memory_controller.h"
#include "spice/measure.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet {
namespace {

using spice::Probe;
using spice::Waveform;
using spice::shapes::pulse;

Waveform syntheticEdge() {
  Waveform w;
  w.addColumn("v");
  // A linear 0->1 ramp between t=1 and t=2, flat elsewhere.
  w.appendSample(0.0, {0.0});
  w.appendSample(1.0, {0.0});
  w.appendSample(2.0, {1.0});
  w.appendSample(3.0, {1.0});
  return w;
}

TEST(Measure, RiseTimeOfLinearRamp) {
  // 10%..90% of a linear 1 s ramp = 0.8 s.
  EXPECT_NEAR(spice::measure::riseTime(syntheticEdge(), "v", 0.0, 1.0), 0.8,
              1e-9);
}

TEST(Measure, FallTimeOfLinearRamp) {
  Waveform w;
  w.addColumn("v");
  w.appendSample(0.0, {1.0});
  w.appendSample(1.0, {1.0});
  w.appendSample(3.0, {0.0});
  w.appendSample(4.0, {0.0});
  EXPECT_NEAR(spice::measure::fallTime(w, "v", 1.0, 0.0), 1.6, 1e-9);
}

TEST(Measure, DelayBetweenColumns) {
  Waveform w;
  w.addColumn("a");
  w.addColumn("b");
  w.appendSample(0.0, {0.0, 1.0});
  w.appendSample(1.0, {1.0, 1.0});
  w.appendSample(2.0, {1.0, 0.0});
  EXPECT_NEAR(
      spice::measure::delay(w, "a", 0.5, true, "b", 0.5, false), 1.0, 1e-9);
}

TEST(Measure, SettlingTimeAndOvershoot) {
  Waveform w;
  w.addColumn("v");
  w.appendSample(0.0, {0.0});
  w.appendSample(1.0, {1.3});   // overshoot
  w.appendSample(2.0, {0.95});
  w.appendSample(3.0, {1.01});
  w.appendSample(4.0, {1.0});
  EXPECT_NEAR(spice::measure::overshoot(w, "v", 1.0), 0.3, 1e-12);
  EXPECT_NEAR(spice::measure::settlingTime(w, "v", 1.0, 0.06), 2.0, 1e-9);
  EXPECT_THROW(spice::measure::settlingTime(w, "v", 2.0, 0.01),
               InvalidArgumentError);
}

TEST(Measure, AverageAndRms) {
  Waveform w;
  w.addColumn("v");
  w.appendSample(0.0, {0.0});
  w.appendSample(1.0, {2.0});
  w.appendSample(2.0, {2.0});
  // Over [0,2]: mean of ramp(0..2)+flat(2) = (1 + 2)/2 = 1.5.
  EXPECT_NEAR(spice::measure::average(w, "v", 0.0, 2.0), 1.5, 1e-9);
  EXPECT_GT(spice::measure::rms(w, "v", 0.0, 2.0),
            spice::measure::average(w, "v", 0.0, 2.0) - 1e-12);
}

TEST(Measure, OnRealRcWaveform) {
  spice::Netlist n;
  n.add<spice::VoltageSource>("V1", n.node("in"), n.ground(),
                              pulse(0.0, 1.0, 0.1e-9, 10e-12, 1.0, 10e-12));
  n.add<spice::Resistor>("R", n.node("in"), n.node("out"), 1000.0);
  n.add<spice::Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  spice::Simulator sim(n);
  sim.initializeUic();
  spice::TransientOptions options;
  options.duration = 10e-9;
  options.dtMax = 10e-12;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  // RC 10-90 rise time = tau * ln(9) = 2.197 ns.
  EXPECT_NEAR(spice::measure::riseTime(r.waveform, "v(out)", 0.0, 1.0),
              2.197e-9, 0.1e-9);
  EXPECT_NEAR(spice::measure::settlingTime(r.waveform, "v(out)", 1.0, 0.02),
              0.1e-9 + 3.9e-9, 0.5e-9);  // ~ln(50) tau after the edge
}

TEST(Controller, WordRoundTripOnCircuitArray) {
  core::ArrayConfig cfg;
  cfg.rows = 2;
  cfg.cols = 4;
  core::MemoryController ctl(cfg, /*wordWidth=*/4);
  EXPECT_EQ(ctl.wordsPerRow(), 1);
  EXPECT_TRUE(ctl.writeWord(0, 0, 0b1010u));
  EXPECT_TRUE(ctl.writeWord(1, 0, 0b0111u));
  EXPECT_EQ(ctl.readWord(0, 0), 0b1010u);
  EXPECT_EQ(ctl.readWord(1, 0), 0b0111u);
  EXPECT_EQ(ctl.stats().wordWrites, 2);
  EXPECT_EQ(ctl.stats().wordReads, 2);
  EXPECT_EQ(ctl.stats().uncorrectable, 0);
  EXPECT_GT(ctl.stats().totalEnergy, 0.0);
}

TEST(Controller, OverwriteAndPartialWords) {
  core::ArrayConfig cfg;
  cfg.rows = 1;
  cfg.cols = 4;
  core::MemoryController ctl(cfg, 2);
  EXPECT_EQ(ctl.wordsPerRow(), 2);
  EXPECT_TRUE(ctl.writeWord(0, 0, 0b11u));
  EXPECT_TRUE(ctl.writeWord(0, 1, 0b01u));
  EXPECT_EQ(ctl.readWord(0, 0), 0b11u);
  EXPECT_EQ(ctl.readWord(0, 1), 0b01u);
  EXPECT_TRUE(ctl.writeWord(0, 0, 0b00u));
  EXPECT_EQ(ctl.readWord(0, 0), 0b00u);
  EXPECT_EQ(ctl.readWord(0, 1), 0b01u);  // neighbour word untouched
}

TEST(Controller, RejectsBadGeometry) {
  core::ArrayConfig cfg;
  cfg.rows = 1;
  cfg.cols = 3;
  EXPECT_THROW(core::MemoryController(cfg, 2), InvalidArgumentError);
  core::ArrayConfig ok;
  ok.rows = 1;
  ok.cols = 2;
  core::MemoryController ctl(ok, 2);
  EXPECT_THROW(ctl.writeWord(0, 1, 0), InvalidArgumentError);
  EXPECT_THROW(ctl.readWord(0, -1), InvalidArgumentError);
}

TEST(Controller, SparePoolExhaustionDuringBurstIsRecordedNotThrown) {
  // Stuck-at-one cells everywhere and a single spare row: a burst of
  // zero-writes drains the pool.  Regression for the unclassified-error
  // path — writeWord must return false with the exhaustion recorded in
  // the ResilienceReport, never throw.
  core::ArrayConfig cfg;
  cfg.rows = 3;  // 2 logical + 1 spare
  cfg.cols = 2;
  cfg.faults.stuckAtOneRate = 1.0;
  core::ControllerConfig cc;
  cc.wordWidth = 2;
  cc.retry.maxRetries = 0;  // bound the circuit-sim count
  cc.eccEnabled = false;
  cc.spareRows = 1;
  core::MemoryController ctl(cfg, cc);
  bool allGood = true;
  for (int row = 0; row < ctl.rows(); ++row) {
    EXPECT_NO_THROW(allGood = ctl.writeWord(row, 0, 0b00u) && allGood);
  }
  EXPECT_FALSE(allGood);  // degraded, not silently fine
  const auto& report = ctl.report();
  EXPECT_GT(report.sparePoolExhausted, 0);
  EXPECT_GT(report.uncorrectedBits, 0);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(ctl.stats().uncorrectable, report.uncorrectedBits);
  // The ledger names the cause in its human-readable summary.
  EXPECT_NE(report.summary().find("spare-exhausted"), std::string::npos);
}

}  // namespace
}  // namespace fefet
