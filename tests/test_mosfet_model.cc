// Tests of the EKV-style compact transistor model (xtor/mosfet_model.h).
#include "xtor/mosfet_model.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace fefet::xtor {
namespace {

MosfetModel nmos() { return MosfetModel(nmos45(), 65e-9); }

TEST(Mosfet, SubthresholdSlopeNear90mVPerDecade) {
  const auto m = nmos();
  const double i1 = m.idsAt(1.0, 0.10, 0.0);
  const double i2 = m.idsAt(1.0, 0.20, 0.0);
  const double decadesPerVolt = std::log10(i2 / i1) / 0.1;
  const double ss = 1000.0 / decadesPerVolt;  // mV/dec
  EXPECT_NEAR(ss, 90.0, 8.0);
}

TEST(Mosfet, OffAndOnCurrents) {
  const auto m = nmos();
  const double ioff = m.idsAt(1.0, 0.0, 0.0);
  const double ion = m.idsAt(1.0, 1.0, 0.0);
  EXPECT_LT(ioff, 1e-9);
  EXPECT_GT(ioff, 1e-13);
  EXPECT_GT(ion, 2e-5);
  EXPECT_GT(ion / ioff, 1e5);
}

TEST(Mosfet, TriodeVsSaturation) {
  const auto m = nmos();
  const double itriode = m.idsAt(0.05, 0.8, 0.0);
  const double isat = m.idsAt(0.8, 0.8, 0.0);
  EXPECT_GT(isat, itriode);
  // Deep in saturation current saturates (CLM-limited growth only).
  const double isat2 = m.idsAt(1.2, 0.8, 0.0);
  EXPECT_LT((isat2 - isat) / isat, 0.25);
}

TEST(Mosfet, CurrentIsAntisymmetricUnderTerminalSwap) {
  const auto m = nmos();
  for (double vg : {0.3, 0.6, 1.0}) {
    const double fwd = m.idsAt(0.5, vg, 0.1);
    const double rev = m.idsAt(0.1, vg, 0.5);
    EXPECT_NEAR(fwd, -rev, std::abs(fwd) * 1e-9);
  }
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto n = nmos();
  MosParams pp = pmos45();
  pp.mobility = nmos45().mobility;  // equalize drive for the mirror test
  const MosfetModel p(pp, 65e-9);
  const double in = n.idsAt(0.5, 0.8, 0.0);
  const double ip = p.idsAt(-0.5, -0.8, 0.0);
  EXPECT_NEAR(ip, -in, std::abs(in) * 1e-9);
}

TEST(Mosfet, ZeroVdsZeroCurrent) {
  const auto m = nmos();
  EXPECT_NEAR(m.idsAt(0.0, 1.0, 0.0), 0.0, 1e-15);
}

TEST(Mosfet, GateChargeMonotonic) {
  const auto m = nmos();
  double prev = m.gateChargeDensity(-2.0);
  for (double v = -1.95; v <= 3.0; v += 0.05) {
    const double q = m.gateChargeDensity(v);
    EXPECT_GT(q, prev) << "at vgs=" << v;
    prev = q;
  }
}

TEST(Mosfet, GateChargeBranches) {
  const auto m = nmos();
  // Deep subthreshold: essentially no charge.
  EXPECT_LT(std::abs(m.gateChargeDensity(0.0)), 1e-3);
  // Strong inversion: positive; accumulation: negative.
  EXPECT_GT(m.gateChargeDensity(1.5), 0.05);
  EXPECT_LT(m.gateChargeDensity(-1.8), -0.05);
}

TEST(Mosfet, CapacitanceIsChargeDerivative) {
  const auto m = nmos();
  const double h = 1e-5;
  for (double v : {-1.5, -0.5, 0.0, 0.45, 1.0, 2.0}) {
    const double numeric =
        (m.gateChargeDensity(v + h) - m.gateChargeDensity(v - h)) / (2.0 * h);
    EXPECT_NEAR(m.gateCapacitanceDensity(v), numeric,
                std::abs(numeric) * 1e-3 + 1e-9)
        << "at vgs=" << v;
  }
}

TEST(Mosfet, CapacitanceBelowOxideLimit) {
  const auto m = nmos();
  for (double v = -2.0; v <= 3.0; v += 0.1) {
    EXPECT_LE(m.gateCapacitanceDensity(v), m.params().cox * 1.0001);
    EXPECT_GE(m.gateCapacitanceDensity(v), 0.0);
  }
}

TEST(Mosfet, ChargeStiffeningReducesHighFieldCapacitance) {
  // The quadratic stiffening term makes C fall off in strong inversion.
  const auto m = nmos();
  EXPECT_LT(m.gateCapacitanceDensity(3.0), m.gateCapacitanceDensity(0.8));
}

TEST(Mosfet, GateVoltageForChargeIsInverse) {
  const auto m = nmos();
  for (double q : {-0.1, -0.01, 0.005, 0.05, 0.2}) {
    EXPECT_NEAR(m.gateChargeDensity(m.gateVoltageForCharge(q)), q,
                std::abs(q) * 1e-6 + 1e-12);
  }
}

TEST(Mosfet, EffectiveThresholdDropsWithDibl) {
  const auto m = nmos();
  EXPECT_LT(m.effectiveThreshold(1.0), m.effectiveThreshold(0.0));
}

TEST(Mosfet, RejectsBadParameters) {
  EXPECT_THROW(MosfetModel(nmos45(), 0.0), InvalidArgumentError);
  MosParams bad = nmos45();
  bad.cox = -1.0;
  EXPECT_THROW(MosfetModel(bad, 65e-9), InvalidArgumentError);
}

TEST(Mosfet, DescribeMentionsGeometry) {
  EXPECT_NE(nmos().describe().find("65"), std::string::npos);
}

// Property sweep: analytic gm/gds match finite differences over a bias grid
// (both operating quadrants, including swapped source/drain).
struct Bias {
  double vd, vg, vs;
};
class DerivativeCheck : public ::testing::TestWithParam<Bias> {};

TEST_P(DerivativeCheck, AnalyticMatchesNumeric) {
  const auto m = nmos();
  const auto [vd, vg, vs] = GetParam();
  const auto op = m.evaluate(vd, vg, vs);
  const double h = 1e-6;
  const double gmNum =
      (m.idsAt(vd, vg + h, vs) - m.idsAt(vd, vg - h, vs)) / (2.0 * h);
  const double gdsNum =
      (m.idsAt(vd + h, vg, vs) - m.idsAt(vd - h, vg, vs)) / (2.0 * h);
  const double scale = std::abs(op.ids) + 1e-9;
  EXPECT_NEAR(op.gm, gmNum, scale * 1e-2 + std::abs(gmNum) * 1e-4);
  EXPECT_NEAR(op.gds, gdsNum, scale * 1e-2 + std::abs(gdsNum) * 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, DerivativeCheck,
    ::testing::Values(Bias{0.4, 0.0, 0.0}, Bias{0.4, 0.3, 0.0},
                      Bias{0.4, 0.68, 0.0}, Bias{1.0, 1.0, 0.0},
                      Bias{0.05, 0.8, 0.0}, Bias{0.0, 0.5, 0.4},
                      Bias{0.1, 0.5, 0.4}, Bias{-0.3, 0.5, 0.0},
                      Bias{0.3, 2.0, 0.0}, Bias{0.68, 1.36, 0.68}));

}  // namespace
}  // namespace fefet::xtor
