// Tests of the process-variation analysis (core/variability.h).
#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "core/materials.h"
#include "core/variability.h"

namespace fefet::core {
namespace {

FefetParams nominal() {
  FefetParams p;
  p.lk = fefetMaterial();
  return p;
}

TEST(Variability, PerturbIsDeterministicPerSeed) {
  VariationSpec spec;
  stats::Rng a(5), b(5);
  const auto pa = perturbDevice(nominal(), spec, a);
  const auto pb = perturbDevice(nominal(), spec, b);
  EXPECT_DOUBLE_EQ(pa.mos.vt0, pb.mos.vt0);
  EXPECT_DOUBLE_EQ(pa.feThickness, pb.feThickness);
}

TEST(Variability, PerturbationMagnitudesMatchSpec) {
  VariationSpec spec;
  stats::Rng rng(11);
  std::vector<double> dvt, dt;
  for (int i = 0; i < 2000; ++i) {
    const auto p = perturbDevice(nominal(), spec, rng);
    dvt.push_back(p.mos.vt0 - nominal().mos.vt0);
    dt.push_back(p.feThickness / nominal().feThickness - 1.0);
  }
  EXPECT_NEAR(stats::stddev(dvt), spec.vtSigma, 0.1 * spec.vtSigma);
  EXPECT_NEAR(stats::stddev(dt), spec.feThicknessSigmaRel,
              0.1 * spec.feThicknessSigmaRel);
  EXPECT_NEAR(stats::mean(dvt), 0.0, 2e-3);
}

TEST(Variability, NominalSpreadKeepsMostDevicesNonvolatile) {
  const auto mc = runDeviceMonteCarlo(nominal(), VariationSpec{}, 400);
  EXPECT_EQ(mc.samples, 400);
  // At the 2.25 nm design point the window has healthy margin: >90 %
  // of devices stay nonvolatile and writable at 0.68 V.
  EXPECT_GT(mc.nonvolatileCount, 360);
  EXPECT_GT(mc.writableCount, 340);
  EXPECT_NEAR(mc.windowWidthMean, 0.57, 0.08);
  EXPECT_GT(mc.windowWidthSigma, 0.0);
  // Distinguishability stays enormous even at the worst sample.
  EXPECT_GT(mc.log10RatioMin, 4.5);
}

TEST(Variability, LargerSpreadCostsYield) {
  VariationSpec mild;
  VariationSpec harsh;
  harsh.feThicknessSigmaRel = 0.06;
  harsh.vtSigma = 50e-3;
  harsh.seed = mild.seed;
  const auto a = runDeviceMonteCarlo(nominal(), mild, 300);
  const auto b = runDeviceMonteCarlo(nominal(), harsh, 300);
  EXPECT_LE(b.writableCount, a.writableCount);
  EXPECT_GT(b.windowWidthSigma, a.windowWidthSigma);
}

TEST(Variability, ThinnerDesignPointIsFragile) {
  // Just above the 2.0 nm non-volatility onset, variation knocks a large
  // fraction of devices volatile — the quantitative backing for the
  // paper's choice of 2.25 nm ("balance between stability and ...").
  FefetParams thin = nominal();
  thin.feThickness = 2.05e-9;
  const auto mcThin = runDeviceMonteCarlo(thin, VariationSpec{}, 300);
  const auto mcNom = runDeviceMonteCarlo(nominal(), VariationSpec{}, 300);
  EXPECT_LT(mcThin.nonvolatileCount, mcNom.nonvolatileCount);
  EXPECT_LT(mcThin.nonvolatileCount, 270);  // clearly lossy
}

TEST(Variability, WriteYieldAtNominalConditions) {
  Cell2TConfig cfg;
  cfg.fefet = nominal();
  // Generous pulse (800 ps) at the nominal 0.68 V: high yield.
  const auto y = runWriteYield(cfg, VariationSpec{}, 12, 0.68, 800e-12);
  EXPECT_EQ(y.samples, 12);
  EXPECT_GE(y.yield(), 0.75);
}

TEST(Variability, WriteYieldCollapsesNearTheWall) {
  Cell2TConfig cfg;
  cfg.fefet = nominal();
  const auto y = runWriteYield(cfg, VariationSpec{}, 10, 0.40, 800e-12);
  EXPECT_LE(y.yield(), 0.5);
}

TEST(Corners, AllThreeCornersStayFunctional) {
  const auto corners = runCorners(nominal());
  ASSERT_EQ(corners.size(), 3u);
  for (const auto& c : corners) {
    EXPECT_TRUE(c.nonvolatile);
    EXPECT_GT(c.onOffRatio, 1e4);
    EXPECT_GT(c.upSwitchVoltage, 0.2);
    EXPECT_LT(c.downSwitchVoltage, -0.02);
  }
}

TEST(Corners, ThicknessShiftsDominateWindowEdges) {
  const auto corners = runCorners(nominal());
  // Fast corner (thinner film) has the narrower window.
  const auto& tt = corners[0];
  const auto& ff = corners[1];
  const auto& ss = corners[2];
  EXPECT_LT(ff.upSwitchVoltage - ff.downSwitchVoltage,
            tt.upSwitchVoltage - tt.downSwitchVoltage);
  EXPECT_GT(ss.upSwitchVoltage - ss.downSwitchVoltage,
            tt.upSwitchVoltage - tt.downSwitchVoltage);
}

// Property sweep: Monte Carlo results are reproducible per seed and vary
// across seeds.
class McSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McSeeds, ReproduciblePerSeed) {
  VariationSpec spec;
  spec.seed = GetParam();
  const auto a = runDeviceMonteCarlo(nominal(), spec, 100);
  const auto b = runDeviceMonteCarlo(nominal(), spec, 100);
  EXPECT_EQ(a.nonvolatileCount, b.nonvolatileCount);
  EXPECT_DOUBLE_EQ(a.windowWidthMean, b.windowWidthMean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McSeeds, ::testing::Values(1u, 7u, 42u));

TEST(VariabilityParallel, MergeMatchesSinglePassStatistics) {
  // Two chunks with the same seeds the parallel runner would use, merged,
  // must reproduce the union's counts exactly and moments to rounding.
  VariationSpec specA, specB;
  specA.seed = 101;
  specB.seed = 202;
  const auto a = runDeviceMonteCarlo(nominal(), specA, 60);
  const auto b = runDeviceMonteCarlo(nominal(), specB, 40);
  const std::vector<DeviceMonteCarlo> parts = {a, b};
  const auto merged = mergeMonteCarlo(parts);
  EXPECT_EQ(merged.samples, 100);
  EXPECT_EQ(merged.nonvolatileCount, a.nonvolatileCount + b.nonvolatileCount);
  EXPECT_EQ(merged.writableCount, a.writableCount + b.writableCount);
  EXPECT_DOUBLE_EQ(merged.upSwitchMin,
                   std::min(a.upSwitchMin, b.upSwitchMin));
  EXPECT_DOUBLE_EQ(merged.downSwitchMax,
                   std::max(a.downSwitchMax, b.downSwitchMax));
  EXPECT_DOUBLE_EQ(merged.log10RatioMin,
                   std::min(a.log10RatioMin, b.log10RatioMin));
  // Weighted mean of the part means.
  const double nA = a.nonvolatileCount, nB = b.nonvolatileCount;
  EXPECT_NEAR(merged.windowWidthMean,
              (a.windowWidthMean * nA + b.windowWidthMean * nB) / (nA + nB),
              1e-12);
}

TEST(VariabilityParallel, MonteCarloInvariantUnderThreadCount) {
  VariationSpec spec;
  spec.seed = 9;
  const auto one = runDeviceMonteCarloParallel(nominal(), spec, 300, 1);
  const auto four = runDeviceMonteCarloParallel(nominal(), spec, 300, 4);
  EXPECT_EQ(one.samples, 300);
  EXPECT_EQ(one.nonvolatileCount, four.nonvolatileCount);
  EXPECT_EQ(one.writableCount, four.writableCount);
  EXPECT_EQ(one.windowWidthMean, four.windowWidthMean);
  EXPECT_EQ(one.windowWidthSigma, four.windowWidthSigma);
  EXPECT_EQ(one.upSwitchMin, four.upSwitchMin);
  EXPECT_EQ(one.downSwitchMax, four.downSwitchMax);
  EXPECT_EQ(one.log10RatioMean, four.log10RatioMean);
  EXPECT_EQ(one.log10RatioMin, four.log10RatioMin);
}

TEST(VariabilityParallel, ChunkingCoversTheExactSampleBudget) {
  VariationSpec spec;
  // 251 = 125 + 126: the trailing 1-sample remainder must be absorbed, not
  // dropped and not run as an invalid single-sample chunk.
  const auto mc = runDeviceMonteCarloParallel(nominal(), spec, 251, 2);
  EXPECT_EQ(mc.samples, 251);
  const auto tiny = runDeviceMonteCarloParallel(nominal(), spec, 3, 2);
  EXPECT_EQ(tiny.samples, 3);
}

}  // namespace
}  // namespace fefet::core
