// Tests of the process-variation analysis (core/variability.h).
#include <cmath>
#include <gtest/gtest.h>

#include "core/materials.h"
#include "core/variability.h"

namespace fefet::core {
namespace {

FefetParams nominal() {
  FefetParams p;
  p.lk = fefetMaterial();
  return p;
}

TEST(Variability, PerturbIsDeterministicPerSeed) {
  VariationSpec spec;
  stats::Rng a(5), b(5);
  const auto pa = perturbDevice(nominal(), spec, a);
  const auto pb = perturbDevice(nominal(), spec, b);
  EXPECT_DOUBLE_EQ(pa.mos.vt0, pb.mos.vt0);
  EXPECT_DOUBLE_EQ(pa.feThickness, pb.feThickness);
}

TEST(Variability, PerturbationMagnitudesMatchSpec) {
  VariationSpec spec;
  stats::Rng rng(11);
  std::vector<double> dvt, dt;
  for (int i = 0; i < 2000; ++i) {
    const auto p = perturbDevice(nominal(), spec, rng);
    dvt.push_back(p.mos.vt0 - nominal().mos.vt0);
    dt.push_back(p.feThickness / nominal().feThickness - 1.0);
  }
  EXPECT_NEAR(stats::stddev(dvt), spec.vtSigma, 0.1 * spec.vtSigma);
  EXPECT_NEAR(stats::stddev(dt), spec.feThicknessSigmaRel,
              0.1 * spec.feThicknessSigmaRel);
  EXPECT_NEAR(stats::mean(dvt), 0.0, 2e-3);
}

TEST(Variability, NominalSpreadKeepsMostDevicesNonvolatile) {
  const auto mc = runDeviceMonteCarlo(nominal(), VariationSpec{}, 400);
  EXPECT_EQ(mc.samples, 400);
  // At the 2.25 nm design point the window has healthy margin: >90 %
  // of devices stay nonvolatile and writable at 0.68 V.
  EXPECT_GT(mc.nonvolatileCount, 360);
  EXPECT_GT(mc.writableCount, 340);
  EXPECT_NEAR(mc.windowWidthMean, 0.57, 0.08);
  EXPECT_GT(mc.windowWidthSigma, 0.0);
  // Distinguishability stays enormous even at the worst sample.
  EXPECT_GT(mc.log10RatioMin, 4.5);
}

TEST(Variability, LargerSpreadCostsYield) {
  VariationSpec mild;
  VariationSpec harsh;
  harsh.feThicknessSigmaRel = 0.06;
  harsh.vtSigma = 50e-3;
  harsh.seed = mild.seed;
  const auto a = runDeviceMonteCarlo(nominal(), mild, 300);
  const auto b = runDeviceMonteCarlo(nominal(), harsh, 300);
  EXPECT_LE(b.writableCount, a.writableCount);
  EXPECT_GT(b.windowWidthSigma, a.windowWidthSigma);
}

TEST(Variability, ThinnerDesignPointIsFragile) {
  // Just above the 2.0 nm non-volatility onset, variation knocks a large
  // fraction of devices volatile — the quantitative backing for the
  // paper's choice of 2.25 nm ("balance between stability and ...").
  FefetParams thin = nominal();
  thin.feThickness = 2.05e-9;
  const auto mcThin = runDeviceMonteCarlo(thin, VariationSpec{}, 300);
  const auto mcNom = runDeviceMonteCarlo(nominal(), VariationSpec{}, 300);
  EXPECT_LT(mcThin.nonvolatileCount, mcNom.nonvolatileCount);
  EXPECT_LT(mcThin.nonvolatileCount, 270);  // clearly lossy
}

TEST(Variability, WriteYieldAtNominalConditions) {
  Cell2TConfig cfg;
  cfg.fefet = nominal();
  // Generous pulse (800 ps) at the nominal 0.68 V: high yield.
  const auto y = runWriteYield(cfg, VariationSpec{}, 12, 0.68, 800e-12);
  EXPECT_EQ(y.samples, 12);
  EXPECT_GE(y.yield(), 0.75);
}

TEST(Variability, WriteYieldCollapsesNearTheWall) {
  Cell2TConfig cfg;
  cfg.fefet = nominal();
  const auto y = runWriteYield(cfg, VariationSpec{}, 10, 0.40, 800e-12);
  EXPECT_LE(y.yield(), 0.5);
}

TEST(Corners, AllThreeCornersStayFunctional) {
  const auto corners = runCorners(nominal());
  ASSERT_EQ(corners.size(), 3u);
  for (const auto& c : corners) {
    EXPECT_TRUE(c.nonvolatile);
    EXPECT_GT(c.onOffRatio, 1e4);
    EXPECT_GT(c.upSwitchVoltage, 0.2);
    EXPECT_LT(c.downSwitchVoltage, -0.02);
  }
}

TEST(Corners, ThicknessShiftsDominateWindowEdges) {
  const auto corners = runCorners(nominal());
  // Fast corner (thinner film) has the narrower window.
  const auto& tt = corners[0];
  const auto& ff = corners[1];
  const auto& ss = corners[2];
  EXPECT_LT(ff.upSwitchVoltage - ff.downSwitchVoltage,
            tt.upSwitchVoltage - tt.downSwitchVoltage);
  EXPECT_GT(ss.upSwitchVoltage - ss.downSwitchVoltage,
            tt.upSwitchVoltage - tt.downSwitchVoltage);
}

// Property sweep: Monte Carlo results are reproducible per seed and vary
// across seeds.
class McSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McSeeds, ReproduciblePerSeed) {
  VariationSpec spec;
  spec.seed = GetParam();
  const auto a = runDeviceMonteCarlo(nominal(), spec, 100);
  const auto b = runDeviceMonteCarlo(nominal(), spec, 100);
  EXPECT_EQ(a.nonvolatileCount, b.nonvolatileCount);
  EXPECT_DOUBLE_EQ(a.windowWidthMean, b.windowWidthMean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McSeeds, ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace fefet::core
