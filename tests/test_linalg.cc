// Unit tests for common/linalg.h: dense and sparse LU solvers.
#include "common/linalg.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace fefet::linalg {
namespace {

TEST(DenseMatrix, MultiplyIdentityLike) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 3.0;
  const std::vector<double> x = {1.0, -1.0};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(DenseLu, Solves2x2) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 3.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 4.0;
  DenseLu lu(a);
  const auto x = lu.solve(std::vector<double>{7.0, 9.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
  DenseLu lu(a);
  const auto x = lu.solve(std::vector<double>{5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(DenseLu, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
  EXPECT_THROW(DenseLu{a}, NumericalError);
}

TEST(SparseMatrix, AccumulatesAndCounts) {
  SparseMatrix m(3);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  m.add(2, 1, -1.0);
  EXPECT_EQ(m.nonZeros(), 2u);
  EXPECT_DOUBLE_EQ(m.row(0).at(0), 3.0);
}

TEST(SparseLu, SolvesTridiagonal) {
  const std::size_t n = 50;
  SparseMatrix m(n);
  std::vector<double> b(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 2.0);
    if (i > 0) m.add(i, i - 1, -1.0);
    if (i + 1 < n) m.add(i, i + 1, -1.0);
  }
  SparseLu lu(m);
  const auto x = lu.solve(b);
  const auto back = m.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], 1.0, 1e-9);
}

TEST(SparseLu, DetectsSingular) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 0, 1.0);  // column 1 empty -> singular
  EXPECT_THROW(SparseLu{m}, NumericalError);
}

TEST(Norms, InfAndTwo) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(normInf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

// Property sweep: sparse LU agrees with dense LU on random sparse systems
// with partial pivoting stress (large off-diagonal entries).
class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, AgreeOnRandomSystems) {
  const int n = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(n) * 977u + 13u);
  DenseMatrix d(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  SparseMatrix s(static_cast<std::size_t>(n));
  // Diagonally-influenced random sparse pattern plus a few large
  // off-diagonal couplings to exercise pivoting.
  for (int i = 0; i < n; ++i) {
    const double diag = rng.uniform(0.5, 2.0);
    d.at(i, i) += diag;
    s.add(i, i, diag);
    for (int k = 0; k < 3; ++k) {
      const int j = rng.uniformInt(0, n - 1);
      const double v = rng.uniform(-3.0, 3.0);
      d.at(i, j) += v;
      s.add(i, j, v);
    }
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& e : b) e = rng.uniform(-1.0, 1.0);

  const auto xd = DenseLu(d).solve(b);
  const auto xs = SparseLu(s).solve(b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)], 1e-7)
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDense,
                         ::testing::Values(2, 5, 10, 25, 60, 120));

// ---------------------------------------------------------------------------
// Multi-RHS solves: one factorization, K column-contiguous right-hand
// sides in a single blocked-substitution pass.  The contract is
// bit-identity per column against the scalar solve() — the blocked inner
// loop applies the same elimination steps in the same order.

/// Random test system with pivoting stress; returns (dense, sparse) pair.
void buildRandomSystem(int n, std::uint64_t seed, DenseMatrix* d,
                       SparseMatrix* s) {
  stats::Rng rng(seed);
  *d = DenseMatrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  *s = SparseMatrix(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double diag = rng.uniform(0.5, 2.0);
    d->at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += diag;
    s->add(static_cast<std::size_t>(i), static_cast<std::size_t>(i), diag);
    for (int k = 0; k < 3; ++k) {
      const int j = rng.uniformInt(0, n - 1);
      const double v = rng.uniform(-3.0, 3.0);
      d->at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += v;
      s->add(static_cast<std::size_t>(i), static_cast<std::size_t>(j), v);
    }
  }
}

TEST(MultiRhs, DenseSolveMultiIsBitIdenticalPerColumn) {
  constexpr int kN = 37;
  constexpr std::size_t kRhs = 5;
  DenseMatrix d;
  SparseMatrix s;
  buildRandomSystem(kN, 20260809u, &d, &s);
  stats::Rng rng(7u);
  std::vector<double> b(kRhs * kN);
  for (auto& e : b) e = rng.uniform(-1.0, 1.0);

  DenseLuFactorizer lu;
  lu.factor(d);
  std::vector<double> multi(kRhs * kN);
  lu.solveMulti(b, multi, kRhs);

  std::vector<double> single(kN);
  for (std::size_t c = 0; c < kRhs; ++c) {
    lu.solve(std::span<const double>(b).subspan(c * kN, kN), single);
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(multi[c * kN + static_cast<std::size_t>(i)],
                single[static_cast<std::size_t>(i)])
          << "col " << c << " row " << i;
    }
  }
}

TEST(MultiRhs, SparseSolveMultiIsBitIdenticalPerColumn) {
  constexpr int kN = 80;
  constexpr std::size_t kRhs = 7;
  DenseMatrix d;
  SparseMatrix s;
  buildRandomSystem(kN, 20260810u, &d, &s);
  stats::Rng rng(11u);
  std::vector<double> b(kRhs * kN);
  for (auto& e : b) e = rng.uniform(-1.0, 1.0);

  SparseLuFactorizer lu;
  lu.factor(s);
  std::vector<double> multi(kRhs * kN);
  lu.solveMulti(b, multi, kRhs);

  std::vector<double> single(kN);
  for (std::size_t c = 0; c < kRhs; ++c) {
    lu.solve(std::span<const double>(b).subspan(c * kN, kN), single);
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(multi[c * kN + static_cast<std::size_t>(i)],
                single[static_cast<std::size_t>(i)])
          << "col " << c << " row " << i;
    }
  }
}

TEST(MultiRhs, LinearSolverFacadeMatchesBackends) {
  constexpr int kN = 24;
  constexpr std::size_t kRhs = 3;
  DenseMatrix d;
  SparseMatrix s;
  buildRandomSystem(kN, 99u, &d, &s);
  stats::Rng rng(3u);
  std::vector<double> b(kRhs * kN);
  for (auto& e : b) e = rng.uniform(-1.0, 1.0);

  // Dense facade overload vs direct factorizer.
  LinearSolver dense(kN, /*sparse=*/false);
  std::vector<double> xDense;
  dense.solveMulti(d.data(), b, xDense, kRhs);
  DenseLuFactorizer dlu;
  dlu.factor(d);
  std::vector<double> xRef(kRhs * kN);
  dlu.solveMulti(b, xRef, kRhs);
  ASSERT_EQ(xDense.size(), xRef.size());
  for (std::size_t i = 0; i < xRef.size(); ++i) ASSERT_EQ(xDense[i], xRef[i]);

  // CSR facade overload (reuse on) vs direct sparse factorizer, and the
  // no-reuse diagnostic path solving the same system to tolerance.
  std::vector<std::size_t> rowPtr{0};
  std::vector<std::size_t> colIdx;
  std::vector<double> values;
  for (int r = 0; r < kN; ++r) {
    for (const auto& [c, v] : s.row(static_cast<std::size_t>(r))) {
      colIdx.push_back(c);
      values.push_back(v);
    }
    rowPtr.push_back(colIdx.size());
  }
  const CsrView csr{static_cast<std::size_t>(kN), rowPtr, colIdx, values};
  LinearSolver sparse(kN, /*sparse=*/true);
  std::vector<double> xCsr;
  sparse.solveMulti(csr, b, xCsr, kRhs, /*reuseStructure=*/true);
  SparseLuFactorizer slu;
  slu.factor(s);
  std::vector<double> xSref(kRhs * kN);
  slu.solveMulti(b, xSref, kRhs);
  for (std::size_t i = 0; i < xSref.size(); ++i) ASSERT_EQ(xCsr[i], xSref[i]);

  LinearSolver sparseNoReuse(kN, /*sparse=*/true);
  std::vector<double> xNoReuse;
  sparseNoReuse.solveMulti(csr, b, xNoReuse, kRhs, /*reuseStructure=*/false);
  for (std::size_t i = 0; i < xSref.size(); ++i) {
    ASSERT_NEAR(xNoReuse[i], xSref[i], 1e-9);
  }
}

}  // namespace
}  // namespace fefet::linalg
