// Unit tests for common/linalg.h: dense and sparse LU solvers.
#include "common/linalg.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"

namespace fefet::linalg {
namespace {

TEST(DenseMatrix, MultiplyIdentityLike) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 3.0;
  const std::vector<double> x = {1.0, -1.0};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(DenseLu, Solves2x2) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 3.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 4.0;
  DenseLu lu(a);
  const auto x = lu.solve(std::vector<double>{7.0, 9.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
  DenseLu lu(a);
  const auto x = lu.solve(std::vector<double>{5.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(DenseLu, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
  EXPECT_THROW(DenseLu{a}, NumericalError);
}

TEST(SparseMatrix, AccumulatesAndCounts) {
  SparseMatrix m(3);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  m.add(2, 1, -1.0);
  EXPECT_EQ(m.nonZeros(), 2u);
  EXPECT_DOUBLE_EQ(m.row(0).at(0), 3.0);
}

TEST(SparseLu, SolvesTridiagonal) {
  const std::size_t n = 50;
  SparseMatrix m(n);
  std::vector<double> b(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 2.0);
    if (i > 0) m.add(i, i - 1, -1.0);
    if (i + 1 < n) m.add(i, i + 1, -1.0);
  }
  SparseLu lu(m);
  const auto x = lu.solve(b);
  const auto back = m.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], 1.0, 1e-9);
}

TEST(SparseLu, DetectsSingular) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 0, 1.0);  // column 1 empty -> singular
  EXPECT_THROW(SparseLu{m}, NumericalError);
}

TEST(Norms, InfAndTwo) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(normInf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

// Property sweep: sparse LU agrees with dense LU on random sparse systems
// with partial pivoting stress (large off-diagonal entries).
class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, AgreeOnRandomSystems) {
  const int n = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(n) * 977u + 13u);
  DenseMatrix d(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  SparseMatrix s(static_cast<std::size_t>(n));
  // Diagonally-influenced random sparse pattern plus a few large
  // off-diagonal couplings to exercise pivoting.
  for (int i = 0; i < n; ++i) {
    const double diag = rng.uniform(0.5, 2.0);
    d.at(i, i) += diag;
    s.add(i, i, diag);
    for (int k = 0; k < 3; ++k) {
      const int j = rng.uniformInt(0, n - 1);
      const double v = rng.uniform(-3.0, 3.0);
      d.at(i, j) += v;
      s.add(i, j, v);
    }
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& e : b) e = rng.uniform(-1.0, 1.0);

  const auto xd = DenseLu(d).solve(b);
  const auto xs = SparseLu(s).solve(b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)], 1e-7)
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDense,
                         ::testing::Values(2, 5, 10, 25, 60, 120));

}  // namespace
}  // namespace fefet::linalg
