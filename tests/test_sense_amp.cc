// Tests of the transistor-level current-sensing read circuit (paper Fig. 8
// and §5): digitization, virtual ground, non-destructive reads, timing.
#include <cmath>
#include <gtest/gtest.h>

#include "core/read_timing.h"
#include "core/sense_amp.h"

namespace fefet::core {
namespace {

TEST(ReadTiming, PaperEquationTwo) {
  ReadTimingModel model;
  // Eq. (2) as printed gives 2.5 ns with the paper's component estimates...
  EXPECT_NEAR(model.readTimeEq2(), 2.5e-9, 1e-12);
  // ...while the paper's quoted total (3.0 ns) is the plain sum.
  EXPECT_NEAR(model.readTimeSum(), 3.0e-9, 1e-12);
}

TEST(ReadTiming, MaxSelectsSlowerOfPreAndDecode) {
  ReadTimingModel model;
  model.tDec = 0.9e-9;
  EXPECT_NEAR(model.readTimeEq2(), 0.9e-9 + 1.5e-9 + 0.5e-9, 1e-15);
}

class SenseAmpTest : public ::testing::Test {
 protected:
  SenseAmpCircuit& circuit() {
    static SenseAmpCircuit instance{SenseAmpConfig{}};
    return instance;
  }
};

TEST_F(SenseAmpTest, ReadsStoredOne) {
  const auto r = circuit().simulateRead(true);
  EXPECT_TRUE(r.bitRead);
  // VSA reaches the supply rail (paper: "V_SA equal to VDD").
  EXPECT_NEAR(r.waveform.finalValue("v(vsa)"), 0.68, 0.05);
}

TEST_F(SenseAmpTest, ReadsStoredZero) {
  const auto r = circuit().simulateRead(false);
  EXPECT_FALSE(r.bitRead);
  EXPECT_NEAR(r.waveform.finalValue("v(vsa)"), 0.0, 0.05);
  // VSENSE decays after pre-charge for a '0' (Fig. 8(b)).
  EXPECT_LT(r.waveform.finalValue("v(vsense)"), 0.15);
}

TEST_F(SenseAmpTest, VirtualGroundMaintained) {
  // The clamping driver holds the sense line near 0 V in both states.
  for (bool bit : {true, false}) {
    const auto r = circuit().simulateRead(bit);
    EXPECT_LT(r.senseLineMax, 0.2) << "bit=" << bit;
    EXPECT_GT(r.waveform.minimum("v(sl)"), -0.2) << "bit=" << bit;
  }
}

TEST_F(SenseAmpTest, ReadIsNonDestructive) {
  // The FEFET polarization is unchanged by the full read chain.
  for (bool bit : {true, false}) {
    const auto r = circuit().simulateRead(bit);
    const auto p = r.waveform.column("P(cell:fe)");
    const double p0 = p.front();
    EXPECT_NEAR(p.back(), p0, 0.05 * 0.22) << "bit=" << bit;
  }
}

TEST_F(SenseAmpTest, PrechargeReachesTargetQuickly) {
  const auto r = circuit().simulateRead(true);
  ASSERT_GE(r.tPreAchieved, 0.0);
  // Well inside the paper's 0.5 ns pre-charge budget.
  EXPECT_LT(r.tPreAchieved, 0.5e-9);
}

TEST_F(SenseAmpTest, SenseResolvesWithinPaperBudget) {
  const auto r = circuit().simulateRead(true);
  ASSERT_GE(r.tSa, 0.0);
  // The paper budgets t_sa = 1.5 ns; our idealized parasitics resolve
  // faster, but never slower than the budget.
  EXPECT_LT(r.tSa, 1.5e-9);
}

TEST_F(SenseAmpTest, ReadEnergiesOrdered) {
  // Reading a '1' burns the conveyed cell current; a '0' read is cheap.
  const double e1 = circuit().simulateRead(true).readEnergy;
  const double e0 = circuit().simulateRead(false).readEnergy;
  EXPECT_GT(e1, e0);
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e1, 10e-12);
}

TEST(SenseAmpConfigTest, AlternatingReadsStayCorrect) {
  SenseAmpCircuit circuit{SenseAmpConfig{}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(circuit.simulateRead(true).bitRead) << i;
    EXPECT_FALSE(circuit.simulateRead(false).bitRead) << i;
  }
}

TEST(SenseAmpConfigTest, WorksAtSlowerPrecharge) {
  SenseAmpConfig cfg;
  cfg.tPre = 1.0e-9;
  SenseAmpCircuit circuit{cfg};
  EXPECT_TRUE(circuit.simulateRead(true).bitRead);
  EXPECT_FALSE(circuit.simulateRead(false).bitRead);
}

}  // namespace
}  // namespace fefet::core
