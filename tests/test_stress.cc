// Tests of the disturb-stress harness.
#include <gtest/gtest.h>

#include "core/stress.h"

namespace fefet::core {
namespace {

ArrayConfig smallArray() { return ArrayConfig{}; }

TEST(Stress, ColumnHammerLeavesVictimsIntact) {
  const auto r = runStress(smallArray(), StressPattern::kColumnHammer, 8);
  EXPECT_TRUE(r.statesIntact);
  EXPECT_EQ(r.operations, 8);
  EXPECT_LT(r.maxDriftFraction, 0.25);
}

TEST(Stress, RowHammerLeavesOtherRowIntact) {
  const auto r = runStress(smallArray(), StressPattern::kRowHammer, 4);
  EXPECT_TRUE(r.statesIntact);
  EXPECT_EQ(r.operations, 4 * 3);
  EXPECT_LT(r.maxDriftFraction, 0.25);
}

TEST(Stress, ReadHammerIsGentlest) {
  const auto read = runStress(smallArray(), StressPattern::kReadHammer, 10);
  const auto write =
      runStress(smallArray(), StressPattern::kColumnHammer, 10);
  EXPECT_TRUE(read.statesIntact);
  EXPECT_LE(read.maxDrift, write.maxDrift + 0.01);
}

TEST(Stress, CheckerboardToggleAlwaysLandsCorrectly) {
  const auto r =
      runStress(smallArray(), StressPattern::kCheckerboardToggle, 3);
  EXPECT_TRUE(r.statesIntact);
  EXPECT_EQ(r.operations, 3 * 6);
}

TEST(Stress, DriftSaturatesWithCycles) {
  const auto a = runStress(smallArray(), StressPattern::kColumnHammer, 6);
  const auto b = runStress(smallArray(), StressPattern::kColumnHammer, 24);
  // 4x the operations must not produce 4x the drift (no runaway walk).
  EXPECT_LT(b.maxDrift, 2.0 * a.maxDrift + 0.01);
  EXPECT_TRUE(b.statesIntact);
}

TEST(Stress, AllPatternsRun) {
  const auto reports = runAllStressPatterns(smallArray(), 2);
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.statesIntact) << toString(r.pattern);
  }
}

TEST(Stress, NamesAreStable) {
  EXPECT_EQ(toString(StressPattern::kColumnHammer), "column-hammer");
  EXPECT_EQ(toString(StressPattern::kReadHammer), "read-hammer");
}

TEST(Stress, RejectsZeroCycles) {
  EXPECT_THROW(runStress(smallArray(), StressPattern::kColumnHammer, 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::core
