// Deadline/CancelToken contracts: monotonic expiry, unlimited sentinels,
// hierarchical children taking the tighter budget, and token-based
// cancellation propagating from parent to child.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/deadline.h"

namespace fefet {
namespace {

TEST(CancelToken, StartsClearAndLatchesOnRequest) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.requestCancel();
  EXPECT_TRUE(token.cancelled());
  token.requestCancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, CopiesShareOneFlag) {
  CancelToken token;
  CancelToken copy = token;
  token.requestCancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_FALSE(d.hasTimeLimit());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remainingSeconds()));
}

TEST(Deadline, DefaultConstructedIsUnlimited) {
  const Deadline d;
  EXPECT_FALSE(d.hasTimeLimit());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, AfterExpiresOnceTheBudgetElapses) {
  const Deadline d = Deadline::after(0.05);
  EXPECT_TRUE(d.hasTimeLimit());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remainingSeconds(), 0.0);
  EXPECT_LE(d.remainingSeconds(), 0.05);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remainingSeconds(), 0.0);
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0.0).expired());
  EXPECT_TRUE(Deadline::after(-1.0).expired());
}

TEST(Deadline, ChildTakesTheTighterBudget) {
  const Deadline parent = Deadline::after(100.0);
  const Deadline tight = parent.child(0.01);
  EXPECT_TRUE(tight.hasTimeLimit());
  EXPECT_LE(tight.remainingSeconds(), 0.01);
  // A looser child request cannot outlive the parent.
  const Deadline loose = parent.child(1e6);
  EXPECT_LE(loose.remainingSeconds(), 100.0);
  // A child of an unlimited parent is bounded only by its own share.
  const Deadline solo = Deadline::unlimited().child(0.5);
  EXPECT_TRUE(solo.hasTimeLimit());
  EXPECT_LE(solo.remainingSeconds(), 0.5);
}

TEST(Deadline, UnlimitedChildOfUnlimitedStaysUnlimited) {
  const Deadline d =
      Deadline::unlimited().child(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(d.hasTimeLimit());
}

TEST(Deadline, TokenCancellationExpiresTheDeadline) {
  CancelToken token;
  const Deadline d = Deadline::unlimited().withToken(token);
  EXPECT_FALSE(d.expired());
  token.requestCancel();
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, ChildInheritsParentTokens) {
  CancelToken parentToken;
  const Deadline parent = Deadline::after(100.0).withToken(parentToken);
  const Deadline child = parent.child(10.0);
  EXPECT_FALSE(child.expired());
  parentToken.requestCancel();
  EXPECT_TRUE(child.expired());   // parent cancel reaches the child
  EXPECT_TRUE(parent.expired());
}

TEST(Deadline, ChildTokenDoesNotCancelTheParent) {
  const Deadline parent = Deadline::after(100.0);
  CancelToken pointToken;
  const Deadline point = parent.child(10.0).withToken(pointToken);
  pointToken.requestCancel();
  EXPECT_TRUE(point.expired());
  EXPECT_FALSE(parent.expired());  // sibling points keep running
}

TEST(Deadline, HugeBudgetDoesNotOverflow) {
  const Deadline d = Deadline::after(1e18);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remainingSeconds(), 1e8);
}

}  // namespace
}  // namespace fefet
