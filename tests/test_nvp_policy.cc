// Tests of the periodic-checkpoint NVP policy (the ODAB alternative) and
// cross-policy properties.
#include <gtest/gtest.h>

#include "nvp/nv_processor.h"

namespace fefet::nvp {
namespace {

NvpConfig periodic(double interval = 300e-6) {
  NvpConfig cfg;
  cfg.policy = BackupPolicy::kPeriodic;
  cfg.checkpointInterval = interval;
  return cfg;
}

TEST(PeriodicPolicy, MakesForwardProgress) {
  const auto trace = standardTraceSet()[2].trace;
  const auto w = mibenchSuite()[0];
  const auto r = simulateNvp(trace, w, fefetNvm(), periodic());
  EXPECT_GT(r.forwardProgress, 0.0);
  EXPECT_LT(r.forwardProgress, 1.0);
  EXPECT_GT(r.backupEnergy, 0.0);
}

TEST(PeriodicPolicy, OdabWinsUnderTheSameConditions) {
  // ODAB checkpoints exactly once per outage; periodic pays for many
  // redundant checkpoints plus lost tails — it must not beat ODAB here.
  const auto trace = standardTraceSet()[2].trace;
  for (const auto& w : mibenchSuite()) {
    const auto odab = simulateNvp(trace, w, fefetNvm());
    const auto peri = simulateNvp(trace, w, fefetNvm(), periodic());
    EXPECT_GE(odab.forwardProgress, peri.forwardProgress * 0.999) << w.name;
  }
}

TEST(PeriodicPolicy, IntervalTradeoffIsNonTrivial) {
  // Too-short intervals waste energy on checkpoints; too-long intervals
  // lose big tails at power failure.  FP must not be monotone across the
  // whole range (there is an interior structure), and very long intervals
  // must be clearly bad.
  const auto trace = standardTraceSet()[2].trace;
  const auto w = mibenchSuite()[3];
  const double fShort =
      simulateNvp(trace, w, fefetNvm(), periodic(50e-6)).forwardProgress;
  const double fMid =
      simulateNvp(trace, w, fefetNvm(), periodic(200e-6)).forwardProgress;
  const double fLong =
      simulateNvp(trace, w, fefetNvm(), periodic(2000e-6)).forwardProgress;
  EXPECT_GT(fShort, fLong);  // with bursts ~200 us, 2 ms intervals lose all
  EXPECT_GT(fMid, 0.0);
  EXPECT_LT(fLong, 0.2 * fShort);
}

TEST(PeriodicPolicy, LostTailsReduceUsefulWork) {
  // A trace that dies mid-interval: the work since the last checkpoint
  // must not be counted.  One 100 us burst with a 300 us checkpoint
  // interval -> nothing committed.
  PowerTrace trace;
  trace.addSegment(100e-6, 200e-6);  // strong burst, then dead
  trace.addSegment(900e-6, 0.0);
  const auto w = mibenchSuite()[0];
  const auto r = simulateNvp(trace, w, fefetNvm(), periodic(300e-6));
  EXPECT_NEAR(r.forwardProgress, 0.0, 1e-6);
  // ODAB on the same trace banks the work before dying.
  const auto odab = simulateNvp(trace, w, fefetNvm());
  EXPECT_GT(odab.forwardProgress, 0.02);
}

TEST(PeriodicPolicy, CheckpointsResumeRunning) {
  // Under abundant power the periodic processor keeps computing across
  // checkpoints: FP ~ interval / (interval + t_backup-ish), i.e. high.
  PowerTrace rich;
  rich.addSegment(0.05, 500e-6);
  const auto w = mibenchSuite()[0];
  const auto r = simulateNvp(rich, w, fefetNvm(), periodic(300e-6));
  EXPECT_GT(r.forwardProgress, 0.9);
  EXPECT_GT(r.backupEnergy, 0.0);  // periodic checkpoints did happen
}

TEST(PeriodicPolicy, FefetStillBeatsFeram) {
  const auto trace = standardTraceSet()[1].trace;
  const auto w = mibenchSuite()[4];
  const double gain = forwardProgressGain(trace, w, fefetNvm(), feramNvm(),
                                          periodic());
  EXPECT_GT(gain, 0.0);
}

}  // namespace
}  // namespace fefet::nvp
