// Tests of the additional circuit devices: diode, inductor, VCVS, VCCS.
#include <cmath>
#include <gtest/gtest.h>

#include "spice/extras.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::spice {
namespace {

using shapes::dc;
using shapes::pulse;
using shapes::sine;

TEST(Diode, ForwardDropNearSixHundredMillivolts) {
  // 1 V through 1 kOhm into a diode: drop ~0.6 V, current ~0.4 mA.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("d"), 1000.0);
  n.add<Diode>("D", n.node("d"), n.ground());
  Simulator sim(n);
  sim.solveDc();
  const double vd = sim.nodeVoltage("d");
  EXPECT_GT(vd, 0.45);
  EXPECT_LT(vd, 0.75);
  EXPECT_NEAR((1.0 - vd) / 1000.0, 4e-4, 1.5e-4);
}

TEST(Diode, ReverseBlocksCurrent) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(-1.0));
  n.add<Resistor>("R", n.node("in"), n.node("d"), 1000.0);
  n.add<Diode>("D", n.node("d"), n.ground());
  Simulator sim(n);
  sim.solveDc();
  // Reverse leakage is ~Is: the node follows the source.
  EXPECT_NEAR(sim.nodeVoltage("d"), -1.0, 1e-3);
}

TEST(Diode, HalfWaveRectifier) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       sine(0.0, 1.5, 100e6));
  n.add<Diode>("D", n.node("in"), n.node("out"));
  n.add<Resistor>("RL", n.node("out"), n.ground(), 10e3);
  n.add<Capacitor>("CL", n.node("out"), n.ground(), 10e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 50e-9;
  options.dtMax = 0.2e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  // Peak-detects to roughly amplitude minus a diode drop; never negative.
  EXPECT_GT(r.waveform.maximum("v(out)"), 0.6);
  EXPECT_GT(r.waveform.minimum("v(out)"), -0.05);
}

TEST(Diode, RejectsBadParameters) {
  Netlist n;
  Diode::Params bad;
  bad.saturationCurrent = 0.0;
  EXPECT_THROW(
      n.add<Diode>("D", n.node("a"), n.ground(), bad),
      InvalidArgumentError);
}

TEST(Inductor, DcShortCircuit) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("x"), 1000.0);
  n.add<Inductor>("L", n.node("x"), n.ground(), 1e-9);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("x"), 0.0, 1e-6);
}

TEST(Inductor, RlRiseTimeMatchesAnalytic) {
  // 1 V step into R = 100 Ohm + L = 100 nH: i(t) = (V/R)(1 - e^{-t/tau}),
  // tau = 1 ns.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R", n.node("in"), n.node("x"), 100.0);
  n.add<Inductor>("L", n.node("x"), n.ground(), 100e-9);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 5e-9;
  options.dtMax = 10e-12;
  const auto r = sim.runTransient(
      options, {Probe::deviceState("L", "i"), Probe::v("x")});
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const double expected = (1.0 / 100.0) * (1.0 - std::exp(-t / 1e-9));
    EXPECT_NEAR(r.waveform.valueAt("i(L)", t), expected, 6e-4) << t;
  }
}

TEST(Inductor, LcOscillatorRings) {
  // Pre-charged C across L: resonant ringing at f = 1/(2 pi sqrt(LC)).
  Netlist n;
  n.add<Inductor>("L", n.node("x"), n.ground(), 10e-9);
  n.add<Capacitor>("C", n.node("x"), n.ground(), 10e-12);
  Simulator sim(n);
  sim.setNodeVoltage("x", 1.0);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 4e-9;
  options.dtMax = 5e-12;
  const auto r = sim.runTransient(options, {Probe::v("x")});
  // f ~ 503 MHz -> half period ~ 0.99 ns: voltage crosses zero around there.
  const double tZero = r.waveform.firstCrossing("v(x)", 0.0, false);
  EXPECT_NEAR(tZero, 0.5e-9, 0.15e-9);
  // It should ring back negative substantially (damped only numerically).
  EXPECT_LT(r.waveform.minimum("v(x)"), -0.6);
}

TEST(Vcvs, AmplifiesControlVoltage) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("c"), n.ground(), dc(0.25));
  n.add<Vcvs>("E1", n.node("o"), n.ground(), n.node("c"), n.ground(), 4.0);
  n.add<Resistor>("RL", n.node("o"), n.ground(), 1e3);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("o"), 1.0, 1e-9);
}

TEST(Vccs, ProducesTransconductanceCurrent) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("c"), n.ground(), dc(0.5));
  // gm = 1 mS from node o to ground, loaded by 2 kOhm from a 0 V source:
  // i = 0.5 mA out of "o" -> v(o) = -1 V across the load.
  n.add<Vccs>("G1", n.node("o"), n.ground(), n.node("c"), n.ground(), 1e-3);
  n.add<Resistor>("RL", n.node("o"), n.ground(), 2e3);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("o"), -1.0, 1e-6);
}

TEST(Vcvs, DifferentialControl) {
  Netlist n;
  n.add<VoltageSource>("Va", n.node("a"), n.ground(), dc(0.8));
  n.add<VoltageSource>("Vb", n.node("b"), n.ground(), dc(0.3));
  n.add<Vcvs>("E1", n.node("o"), n.ground(), n.node("a"), n.node("b"), 2.0);
  n.add<Resistor>("RL", n.node("o"), n.ground(), 1e3);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("o"), 1.0, 1e-9);
}

}  // namespace
}  // namespace fefet::spice
