// Tests of the FEFET device-level behaviour (paper §2-§3, Figs. 2-4):
// hysteresis windows vs T_FE, non-volatility onset, distinguishability and
// transient state retention in the circuit solver.
#include <cmath>
#include <gtest/gtest.h>

#include "core/fefet.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {
namespace {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

FefetParams at(double thickness) {
  FefetParams p;
  p.feThickness = thickness;
  return p;
}

TEST(FefetWindows, OneNmIsMonostable) {
  // Paper Fig. 4(a): no hysteresis at T_FE = 1 nm.
  const auto w = analyzeHysteresis(at(1.0e-9));
  EXPECT_FALSE(w.hysteretic);
  EXPECT_FALSE(w.nonvolatile);
}

TEST(FefetWindows, OnePointNineNmHystereticButVolatile) {
  // Paper Fig. 3: hysteresis entirely at positive V_GS.
  const auto w = analyzeHysteresis(at(1.9e-9));
  EXPECT_TRUE(w.hysteretic);
  EXPECT_FALSE(w.nonvolatile);
  EXPECT_GT(w.downSwitchVoltage, 0.0);
  EXPECT_GT(w.upSwitchVoltage, w.downSwitchVoltage);
}

TEST(FefetWindows, DesignPointIsNonvolatileWithHalfVoltWindow) {
  // Paper Fig. 2 / §3: T_FE = 2.25 nm, hysteresis "around 500 mV"
  // spanning V_GS = 0.
  const auto w = analyzeHysteresis(at(2.25e-9));
  EXPECT_TRUE(w.nonvolatile);
  EXPECT_LT(w.downSwitchVoltage, -0.1);
  EXPECT_GT(w.upSwitchVoltage, 0.3);
  EXPECT_NEAR(w.width(), 0.55, 0.12);
}

TEST(FefetWindows, WiderFilmStaysWithinOneVolt) {
  // Paper Fig. 4(b): the 2.5 nm FEFET loop lies within +/-1 V while the
  // standalone capacitor's coercive voltage exceeds 2 V.
  const auto w = analyzeHysteresis(at(2.5e-9));
  EXPECT_TRUE(w.nonvolatile);
  EXPECT_GT(w.downSwitchVoltage, -1.0);
  EXPECT_LT(w.upSwitchVoltage, 1.0);
  const ferro::LandauKhalatnikov lk{at(2.5e-9).lk};
  EXPECT_GT(lk.coerciveField() * 2.5e-9, 2.0);
}

TEST(FefetWindows, SeriesConnectionReducesSwitchingVoltage) {
  // The NC voltage step-up: device-level switching voltages are far below
  // the bare film's coercive voltage at the same thickness.
  const auto w = analyzeHysteresis(at(2.25e-9));
  const ferro::LandauKhalatnikov lk{at(2.25e-9).lk};
  const double bareVc = lk.coerciveField() * 2.25e-9;  // ~2.8 V
  EXPECT_LT(w.upSwitchVoltage, 0.25 * bareVc);
  EXPECT_LT(std::abs(w.downSwitchVoltage), 0.25 * bareVc);
}

TEST(FefetWindows, NonvolatilityOnsetNearTwoNm) {
  // Paper §3: "T_FE > 1.9 nm is required to retain the polarization".
  const double t = minimumNonvolatileThickness(at(2.25e-9), 1.0e-9, 2.5e-9);
  EXPECT_GT(t, 1.9e-9);
  EXPECT_LT(t, 2.1e-9);
}

TEST(FefetStates, TwoStableStatesAtZeroBias) {
  const auto stable = stableInternalVoltages(at(2.25e-9), 0.0);
  ASSERT_GE(stable.size(), 2u);
  // OFF near 0 V internal, ON boosted above 2 V (NC amplification).
  EXPECT_LT(std::abs(stable.front()), 0.2);
  EXPECT_GT(stable.back(), 2.0);
}

TEST(FefetStates, DistinguishabilityIsAboutOneMillion) {
  // Paper: current ratio ~1e6 between the two states at V_GS = 0.
  const double ratio = distinguishability(at(2.25e-9), 0.4);
  EXPECT_GT(ratio, 3e5);
  EXPECT_LT(ratio, 5e7);
}

TEST(FefetStates, StateCurrentSelectsBasin) {
  const auto p = at(2.25e-9);
  const double iOn = stateCurrent(p, 0.0, 0.4, /*psiSeed=*/2.5);
  const double iOff = stateCurrent(p, 0.0, 0.4, /*psiSeed=*/0.0);
  EXPECT_GT(iOn, 1e-5);
  EXPECT_LT(iOff, 1e-9);
}

TEST(FefetStates, GateVoltageOfInternalConsistent) {
  const auto p = at(2.25e-9);
  const xtor::MosfetModel mos(p.mos, p.width);
  const ferro::LandauKhalatnikov lk(p.lk);
  const double psi = 1.0;
  const double expected =
      psi + p.feThickness * lk.staticField(mos.gateChargeDensity(psi));
  EXPECT_DOUBLE_EQ(gateVoltageOfInternal(p, psi), expected);
}

TEST(FefetTransient, WritePulseSetsStateAndHoldRetainsIt) {
  // Full circuit-level check: gate pulse writes '1'; removing all bias
  // retains it (Fig. 2(b) behaviour).
  spice::Netlist n;
  auto* vg = n.add<spice::VoltageSource>("Vg", n.node("g"), n.ground(),
                                         dc(0.0));
  n.add<spice::VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.0));
  n.add<spice::VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  auto inst = attachFefet(n, "x", "g", "d", "s", at(2.25e-9), 0.0);
  spice::Simulator sim(n);
  sim.initializeUic();

  vg->setShape(pulse(0.0, 0.68, 0.05e-9, 20e-12, 1.0e-9, 20e-12));
  spice::TransientOptions options;
  options.duration = 1.6e-9;
  sim.runTransient(options, {Probe::deviceState("x:fe", "P")});
  const double pAfterWrite = inst.polarization();
  EXPECT_GT(pAfterWrite, 0.1);

  vg->setShape(dc(0.0));
  options.duration = 20e-9;
  sim.runTransient(options, {Probe::deviceState("x:fe", "P")});
  EXPECT_NEAR(inst.polarization(), pAfterWrite, 0.25 * pAfterWrite);
  EXPECT_GT(inst.polarization(), 0.1);
}

TEST(FefetTransient, NegativePulseErases) {
  spice::Netlist n;
  auto* vg = n.add<spice::VoltageSource>("Vg", n.node("g"), n.ground(),
                                         dc(0.0));
  n.add<spice::VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.0));
  n.add<spice::VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  const auto params = at(2.25e-9);
  const auto stable = stableInternalVoltages(params, 0.0);
  const xtor::MosfetModel mos(params.mos, params.width);
  const double pOn = mos.gateChargeDensity(stable.back());
  auto inst = attachFefet(n, "x", "g", "d", "s", params, pOn);
  spice::Simulator sim(n);
  sim.setNodeVoltage("x:int", stable.back());
  sim.initializeUic();

  vg->setShape(pulse(0.0, -0.68, 0.05e-9, 20e-12, 1.0e-9, 20e-12));
  spice::TransientOptions options;
  options.duration = 2.0e-9;
  sim.runTransient(options, {Probe::deviceState("x:fe", "P")});
  EXPECT_LT(inst.polarization(), 0.05);
}

TEST(FefetTransient, SubWindowPulseDoesNotDisturb) {
  // A pulse inside the hysteresis window must not flip the OFF state.
  spice::Netlist n;
  auto* vg = n.add<spice::VoltageSource>("Vg", n.node("g"), n.ground(),
                                         dc(0.0));
  n.add<spice::VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.0));
  n.add<spice::VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  auto inst = attachFefet(n, "x", "g", "d", "s", at(2.25e-9), 0.0);
  spice::Simulator sim(n);
  sim.initializeUic();
  vg->setShape(pulse(0.0, 0.25, 0.05e-9, 20e-12, 2e-9, 20e-12));
  spice::TransientOptions options;
  options.duration = 3e-9;
  sim.runTransient(options, {Probe::deviceState("x:fe", "P")});
  EXPECT_LT(inst.polarization(), 0.05);
}

// Property sweep: window width grows monotonically with thickness past the
// hysteresis onset.
class WindowVsThickness : public ::testing::TestWithParam<double> {};

TEST_P(WindowVsThickness, WidthMonotoneInThickness) {
  const double t = GetParam();
  const auto w1 = analyzeHysteresis(at(t));
  const auto w2 = analyzeHysteresis(at(t + 0.15e-9));
  ASSERT_TRUE(w1.hysteretic);
  ASSERT_TRUE(w2.hysteretic);
  EXPECT_GT(w2.width(), w1.width());
}

INSTANTIATE_TEST_SUITE_P(Thicknesses, WindowVsThickness,
                         ::testing::Values(1.9e-9, 2.1e-9, 2.25e-9, 2.5e-9));

}  // namespace
}  // namespace fefet::core
