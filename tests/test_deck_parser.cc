// Tests of the SPICE-deck netlist front end.
#include <cmath>
#include <gtest/gtest.h>

#include "common/stats.h"
#include "spice/deck_parser.h"
#include "spice/fecap_device.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::spice {
namespace {

TEST(EngineeringValues, SuffixesAndSigns) {
  EXPECT_DOUBLE_EQ(parseEngineeringValue("2.25n"), 2.25e-9);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("0.2f"), 0.2e-15);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("3k"), 3e3);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("-0.68"), -0.68);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("1.5u"), 1.5e-6);
  EXPECT_DOUBLE_EQ(parseEngineeringValue("2g"), 2e9);
}

TEST(EngineeringValues, RejectGarbage) {
  EXPECT_THROW(parseEngineeringValue("abc"), InvalidArgumentError);
  EXPECT_THROW(parseEngineeringValue("1x"), InvalidArgumentError);
  EXPECT_THROW(parseEngineeringValue(""), InvalidArgumentError);
}

TEST(DeckParser, VoltageDividerDeck) {
  Netlist n;
  const auto stats = parseDeckString(R"(
* a classic divider
V1 in 0 DC 2.0
R1 in mid 1k
R2 mid 0 3k
.end
)", n);
  EXPECT_EQ(stats.deviceCount, 3);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("mid"), 1.5, 1e-6);
}

TEST(DeckParser, PulseSourceAndRcTransient) {
  Netlist n;
  parseDeckString(R"(
V1 in 0 PULSE(0 1 0 1p 1 1p)
R1 in out 1k
C1 out 0 1p
.end
)", n);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2e-9;
  options.dtMax = 10e-12;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(r.waveform.valueAt("v(out)", 1e-9), 1.0 - std::exp(-1.0),
              0.02);
}

TEST(DeckParser, PwlAndSineSources) {
  Netlist n;
  parseDeckString(R"(
V1 a 0 PWL(0 0 1n 1 2n 0)
V2 b 0 SIN(0.5 0.5 1g)
.end
)", n);
  auto* v1 = n.get<VoltageSource>("V1");
  auto* v2 = n.get<VoltageSource>("V2");
  EXPECT_DOUBLE_EQ(v1->valueAt(0.5e-9), 0.5);
  EXPECT_NEAR(v2->valueAt(0.25e-9), 1.0, 1e-9);
}

TEST(DeckParser, MosfetInverterDeck) {
  Netlist n;
  parseDeckString(R"(
Vdd vdd 0 DC 0.68
Vin in 0 DC 0
MP1 out in vdd PMOS W=260n
MN1 out in 0 NMOS W=130n
.end
)", n);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("out"), 0.68, 0.02);
}

TEST(DeckParser, FeCapCardBuildsLkDevice) {
  Netlist n;
  parseDeckString(R"(
V1 a 0 PULSE(0 2.0 0.1n 20p 2n 20p)
XFE1 a 0 FECAP T=1n W=65n L=45n P0=-0.4636 RHO=1.0
.end
)", n);
  auto* fe = n.get<FeCapDevice>("XFE1");
  EXPECT_NEAR(fe->geometry().thickness, 1e-9, 1e-15);
  EXPECT_NEAR(fe->polarization(), -0.4636, 1e-6);
  // A super-coercive pulse flips it.
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 3e-9;
  sim.runTransient(options, {Probe::deviceState("XFE1", "P")});
  EXPECT_GT(fe->polarization(), 0.4);
}

TEST(DeckParser, ControlledSourcesAndDiode) {
  Netlist n;
  parseDeckString(R"(
V1 c 0 DC 0.25
E1 o 0 c 0 4.0
RL o 0 1k
G1 p 0 c 0 1m
RP p 0 2k
V2 q 0 DC 1.0
RD q d 1k
D1 d 0 IS=1e-14 N=1.0
.end
)", n);
  Simulator sim(n);
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("o"), 1.0, 1e-6);
  EXPECT_NEAR(sim.nodeVoltage("p"), -0.5, 1e-6);
  EXPECT_GT(sim.nodeVoltage("d"), 0.45);
  EXPECT_LT(sim.nodeVoltage("d"), 0.75);
}

TEST(DeckParser, CommentsAndBlankLines) {
  Netlist n;
  const auto stats = parseDeckString(R"(
* header comment

R1 a 0 1k   ; trailing comment
* another
.end
R2 never 0 1k
)", n);
  EXPECT_EQ(stats.deviceCount, 1);
  EXPECT_EQ(n.find("R2"), nullptr);
}

TEST(DeckParser, ErrorsCarryLineNumbers) {
  Netlist n;
  try {
    parseDeckString("R1 a 0 1k\nQ9 what is this\n", n);
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DeckParser, MalformedCardsRejected) {
  Netlist a;
  EXPECT_THROW(parseDeckString("R1 a 0\n", a), InvalidArgumentError);
  Netlist b;
  EXPECT_THROW(parseDeckString("V1 a 0 PULSE(0 1)\n", b),
               InvalidArgumentError);
  Netlist c;
  EXPECT_THROW(parseDeckString("M1 d g s JFET\n", c), InvalidArgumentError);
  Netlist d;
  EXPECT_THROW(parseDeckString("X1 a b NOTFECAP\n", d),
               InvalidArgumentError);
}

TEST(DeckParser, FullCellDeckWrites) {
  // The paper's write path, expressed as a deck: access NMOS + FEFET
  // (FE cap + transistor with an internal node).
  Netlist n;
  parseDeckString(R"(
Vws ws 0 PULSE(0 1.36 20p 20p 900p 20p)
Vwbl wbl 0 PULSE(0 0.68 60p 20p 700p 20p)
Macc wbl ws g NMOS W=65n
XFE g int FECAP T=2.25n P0=0 W=65n L=45n RHO=0.885
Mfet rs int sl NMOS W=65n
Vrs rs 0 DC 0
Vsl sl 0 DC 0
.end
)", n);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1.5e-9;
  sim.runTransient(options, {Probe::deviceState("XFE", "P")});
  EXPECT_GT(n.get<FeCapDevice>("XFE")->polarization(), 0.1);
}

TEST(DeckParser, SubcircuitExpansion) {
  Netlist n;
  const auto stats = parseDeckString(R"(
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 2.0
Xd1 a m1 divider
Xd2 m1 m2 divider
.end
)", n);
  EXPECT_EQ(stats.deviceCount, 1 + 2 * 2);
  Simulator sim(n);
  sim.solveDc();
  // Chained dividers: m1 loaded by the second divider's 2k series.
  EXPECT_NEAR(sim.nodeVoltage("m1"), 2.0 * (2.0 / 3.0) / (1.0 + 2.0 / 3.0),
              1e-3);
  EXPECT_NEAR(sim.nodeVoltage("m2"),
              sim.nodeVoltage("m1") * 0.5, 1e-6);
  // Internal names are instance-scoped.
  EXPECT_NE(n.find("Xd1:R1"), nullptr);
  EXPECT_NE(n.find("Xd2:R2"), nullptr);
}

TEST(DeckParser, NestedSubcircuits) {
  Netlist n;
  parseDeckString(R"(
.subckt unit a b
R1 a b 1k
.ends
.subckt pair x y
Xu1 x mid unit
Xu2 mid y unit
.ends
V1 top 0 DC 1.0
Xp top 0 pair
.end
)", n);
  Simulator sim(n);
  sim.solveDc();
  // 2k total to ground: midpoint at 0.5 V.
  EXPECT_NEAR(sim.nodeVoltage("Xp:mid"), 0.5, 1e-6);
}

TEST(DeckParser, SubcircuitFefetCell) {
  // A reusable FEFET-cell subcircuit instantiated twice.
  Netlist n;
  parseDeckString(R"(
.subckt fecell wbl ws rs sl
Macc wbl ws g NMOS W=65n
XFE g int FECAP T=2.25n P0=0 W=65n L=45n RHO=0.885
Mfet rs int sl NMOS W=65n
.ends
Vws ws 0 PULSE(0 1.36 20p 20p 900p 20p)
Vw1 wbl1 0 PULSE(0 0.68 60p 20p 700p 20p)
Vw2 wbl2 0 DC 0
Vrs rs 0 DC 0
Vsl sl 0 DC 0
Xc1 wbl1 ws rs sl fecell
Xc2 wbl2 ws rs sl fecell
.end
)", n);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1.5e-9;
  sim.runTransient(options, {});
  // Cell 1 was written; cell 2 (grounded bit line) was not.
  EXPECT_GT(n.get<FeCapDevice>("Xc1:XFE")->polarization(), 0.1);
  EXPECT_LT(n.get<FeCapDevice>("Xc2:XFE")->polarization(), 0.05);
}

TEST(DeckParser, SubcircuitErrors) {
  Netlist a;
  EXPECT_THROW(parseDeckString("Xb x y nosuchthing\n", a),
               InvalidArgumentError);
  Netlist b;
  EXPECT_THROW(parseDeckString(R"(
.subckt broken a b
R1 a b 1k
)", b),
               InvalidArgumentError);  // unterminated
  Netlist c;
  EXPECT_THROW(parseDeckString(R"(
.subckt u a b
R1 a b 1k
.ends
Xq onlyone u
)", c),
               InvalidArgumentError);  // port arity mismatch
}

TEST(DeckParser, MutationRobustness) {
  // Fuzz-ish robustness: random single-character mutations of a valid deck
  // must either parse or throw a library error — never crash or hang.
  const std::string base = R"(V1 in 0 PULSE(0 1 0 1p 1 1p)
R1 in out 1k
C1 out 0 1p
D1 out 0 IS=1e-14
M1 d in 0 NMOS W=65n
XF in d FECAP T=2.25n P0=0
.end
)";
  stats::Rng rng(2024);
  const std::string alphabet = "RCVIX.()=knpu0123456789 eE-";
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    std::string deck = base;
    const int pos = rng.uniformInt(0, static_cast<int>(deck.size()) - 1);
    deck[static_cast<std::size_t>(pos)] =
        alphabet[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(alphabet.size()) - 1))];
    Netlist n;
    try {
      parseDeckString(deck, n);
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300);
  EXPECT_GT(parsed, 10);    // many mutations are benign
  EXPECT_GT(rejected, 10);  // and many are caught
}

}  // namespace
}  // namespace fefet::spice
