// Tests of MOSFETs inside the circuit solver: inverters, mirrors,
// followers and gate-charge dynamics.
#include <cmath>
#include <gtest/gtest.h>

#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "xtor/mosfet_model.h"

namespace fefet::spice {
namespace {

using shapes::dc;
using shapes::pulse;

constexpr double kVdd = 0.68;

TEST(Inverter, DcTransferCharacteristic) {
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(kVdd));
  auto* vin = n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(0.0));
  n.add<MosfetDevice>("MP", n.node("out"), n.node("in"), n.node("vdd"),
                      xtor::pmos45(), 260e-9);
  n.add<MosfetDevice>("MN", n.node("out"), n.node("in"), n.ground(),
                      xtor::nmos45(), 130e-9);
  Simulator sim(n);

  vin->setShape(dc(0.0));
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("out"), kVdd, 0.02);

  vin->setShape(dc(kVdd));
  sim.solveDc();
  EXPECT_NEAR(sim.nodeVoltage("out"), 0.0, 0.02);

  // Transition region: output between the rails.
  vin->setShape(dc(0.34));
  sim.solveDc();
  const double mid = sim.nodeVoltage("out");
  EXPECT_GT(mid, 0.05);
  EXPECT_LT(mid, kVdd - 0.05);
}

TEST(Inverter, TransientSwitchesWithDelay) {
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(kVdd));
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(),
                       pulse(0.0, kVdd, 0.2e-9, 20e-12, 2e-9, 20e-12));
  n.add<MosfetDevice>("MP", n.node("out"), n.node("in"), n.node("vdd"),
                      xtor::pmos45(), 260e-9);
  n.add<MosfetDevice>("MN", n.node("out"), n.node("in"), n.ground(),
                      xtor::nmos45(), 130e-9);
  n.add<Capacitor>("CL", n.node("out"), n.ground(), 1e-15);
  Simulator sim(n);
  sim.setNodeVoltage("vdd", kVdd);
  sim.setNodeVoltage("out", kVdd);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1.5e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(r.waveform.valueAt("v(out)", 0.15e-9), kVdd, 0.03);
  EXPECT_NEAR(r.waveform.finalValue("v(out)"), 0.0, 0.03);
  const double tFall = r.waveform.firstCrossing("v(out)", kVdd / 2, false);
  EXPECT_GT(tFall, 0.2e-9);
  EXPECT_LT(tFall, 0.6e-9);
}

TEST(CurrentMirror, CopiesWithinTenPercent) {
  // NMOS mirror: reference current into a diode device, mirrored into a
  // load resistor from VDD.
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(1.0));
  n.add<CurrentSource>("Iref", n.node("vdd"), n.node("m"), dc(5e-6));
  n.add<MosfetDevice>("N1", n.node("m"), n.node("m"), n.ground(),
                      xtor::nmos45(), 650e-9);
  n.add<MosfetDevice>("N2", n.node("o"), n.node("m"), n.ground(),
                      xtor::nmos45(), 650e-9);
  auto* rl = n.add<Resistor>("RL", n.node("vdd"), n.node("o"), 10e3);
  Simulator sim(n);
  sim.setNodeVoltage("vdd", 1.0);
  sim.setNodeVoltage("m", 0.4);
  sim.setNodeVoltage("o", 0.6);
  sim.solveDc();
  SystemView view(sim.solution(), n.nodeCount());
  // An uncascoded mirror near weak inversion over-copies via DIBL/CLM at
  // the higher output VDS; expect the copy within [1x, 2x] of the input.
  EXPECT_GT(rl->current(view), 5e-6);
  EXPECT_LT(rl->current(view), 10e-6);
}

TEST(SourceFollower, TracksInputMinusVt) {
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(1.5));
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(1.2));
  n.add<MosfetDevice>("MF", n.node("vdd"), n.node("in"), n.node("out"),
                      xtor::nmos45(), 650e-9);
  n.add<Resistor>("RL", n.node("out"), n.ground(), 100e3);
  Simulator sim(n);
  sim.solveDc();
  const double out = sim.nodeVoltage("out");
  EXPECT_GT(out, 0.55);
  EXPECT_LT(out, 0.95);  // in - VT - overdrive
}

TEST(PassGate, NmosPassesWeakOne) {
  // NMOS passing VDD charges the output only to about VG - VT.
  Netlist n;
  n.add<VoltageSource>("Vg", n.node("g"), n.ground(), dc(kVdd));
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(kVdd));
  n.add<MosfetDevice>("MP", n.node("in"), n.node("g"), n.node("out"),
                      xtor::nmos45(), 65e-9);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 0.5e-15);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  const double vout = r.waveform.finalValue("v(out)");
  EXPECT_GT(vout, 0.15);
  // The VT drop: well below the full level at this time scale (the tail
  // creeps up only logarithmically through subthreshold conduction).
  EXPECT_LT(vout, 0.55);
}

TEST(PassGate, BoostedGatePassesFullLevel) {
  // The paper's boosted write-select (2x VDD) passes V_write fully.
  Netlist n;
  n.add<VoltageSource>("Vg", n.node("g"), n.ground(), dc(2.0 * kVdd));
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(kVdd));
  n.add<MosfetDevice>("MP", n.node("in"), n.node("g"), n.node("out"),
                      xtor::nmos45(), 65e-9);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 0.5e-15);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 10e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(r.waveform.finalValue("v(out)"), kVdd, 0.02);
}

TEST(GateCharge, DrawsTransientGateCurrentOnly) {
  // A gate driven through a resistor settles with zero steady current.
  Netlist n;
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.1e-9, 20e-12, 1.0, 20e-12));
  n.add<Resistor>("Rg", n.node("in"), n.node("g"), 10e3);
  n.add<MosfetDevice>("M", n.node("d"), n.node("g"), n.ground(),
                      xtor::nmos45(), 650e-9);
  n.add<VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.05));
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 5e-9;
  const auto r = sim.runTransient(options, {Probe::v("g"), Probe::i("Vin")});
  EXPECT_NEAR(r.waveform.finalValue("v(g)"), 1.0, 0.01);
  EXPECT_NEAR(r.waveform.finalValue("i(Vin)"), 0.0, 1e-8);
  // Peak charging current is visibly nonzero.
  EXPECT_GT(r.waveform.maximum("i(Vin)"), 1e-6);
}

}  // namespace
}  // namespace fefet::spice
