// Cross-module integration tests: the full pipeline from device physics
// through cells, arrays, macro energies and the NVP system model — the
// paper's storyline end to end.
#include <cmath>
#include <gtest/gtest.h>

#include "core/cell2t.h"
#include "core/design_space.h"
#include "core/feram_cell.h"
#include "core/macro_energy.h"
#include "core/materials.h"
#include "core/memory_array.h"
#include "core/sense_amp.h"
#include "ferro/calibrate.h"
#include "nvp/nv_processor.h"

namespace fefet {
namespace {

TEST(Integration, RhoCalibrationReproducesShippedConstants) {
  // The constants in materials.cc are the cached results of the
  // calibration routines; re-run them and verify (the paper anchor:
  // 550 ps at 0.68 V / 1.64 V).
  const double fefetRho = core::calibrateFefetRho();
  EXPECT_NEAR(fefetRho, core::fefetMaterial().rho,
              0.03 * core::fefetMaterial().rho);
  const double feramRho = core::calibrateFeramRho();
  EXPECT_NEAR(feramRho, core::feramMaterial().rho,
              0.03 * core::feramMaterial().rho);
}

TEST(Integration, DeviceWindowPredictsCellBehaviour) {
  // The quasi-static fold voltages bound the dynamic write wall.
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  const auto window = core::analyzeHysteresis(params);
  core::Cell2TConfig cfg;
  cfg.fefet = params;
  core::Cell2T cell(cfg);
  // Writing just above the up-fold succeeds given enough time.
  cell.setStoredBit(false);
  EXPECT_TRUE(cell.write(true, 3e-9, window.upSwitchVoltage + 0.1).bitAfter);
  // Writing well below the fold never succeeds.
  cell.setStoredBit(false);
  EXPECT_FALSE(
      cell.write(true, 3e-9, window.upSwitchVoltage - 0.15).bitAfter);
}

TEST(Integration, CellAndArrayAgreeOnReadCurrents) {
  core::Cell2TConfig cellCfg;
  core::Cell2T cell(cellCfg);
  cell.setStoredBit(true);
  const double iCell = cell.read().readCurrent;

  core::ArrayConfig arrCfg;
  core::MemoryArray arr(arrCfg);
  arr.setPattern({{true, false, false}, {false, false, false}});
  const double iArray = arr.readBit(0, 0).readCurrent;
  EXPECT_NEAR(iArray, iCell, 0.2 * iCell);
}

TEST(Integration, FullMemoryLifecycle) {
  // write -> hold -> read -> overwrite -> read, with energy accounting at
  // each step, on both technologies.
  core::Cell2TConfig fefetCfg;
  core::Cell2T fefet(fefetCfg);
  fefet.setStoredBit(false);
  ASSERT_TRUE(fefet.write(true, 700e-12).bitAfter);
  ASSERT_TRUE(fefet.hold(20e-9).bitAfter);
  auto read = fefet.read();
  ASSERT_TRUE(read.bitAfter);
  EXPECT_GT(read.readCurrent, 1e-5);
  ASSERT_FALSE(fefet.write(false, 900e-12).bitAfter);
  EXPECT_LT(fefet.read().readCurrent, 1e-7);

  core::FeRamConfig feramCfg;
  core::FeRamCell feram(feramCfg);
  feram.setStoredBit(false);
  ASSERT_TRUE(feram.write(true, 800e-12).bitAfter);
  ASSERT_TRUE(feram.hold(20e-9).bitAfter);
  const auto feramRead = feram.read();
  EXPECT_TRUE(feramRead.bitRead);
  EXPECT_TRUE(feramRead.bitAfter);  // restored after destructive read
}

TEST(Integration, PaperHeadlineClaims) {
  // The abstract in one test: iso-write 550 ps, 58.5% lower write voltage,
  // ~67.7% lower write energy, 2.4x area, ~27% forward progress.
  core::MacroEnergyModel macro;
  EXPECT_NEAR(macro.writeVoltageReduction(), 0.585, 0.01);
  EXPECT_NEAR(macro.writeEnergySavings(), 0.677, 0.05);
  EXPECT_NEAR(layout::cellAreaRatio(layout::DesignRules{}, 65e-9), 2.4, 0.1);

  const auto trace = nvp::standardTraceSet()[2].trace;
  double gain = 0.0;
  for (const auto& w : nvp::mibenchSuite()) {
    gain += nvp::forwardProgressGain(trace, w, nvp::fefetNvm(),
                                     nvp::feramNvm());
  }
  EXPECT_NEAR(gain / 8.0, 0.27, 0.06);
}

TEST(Integration, SenseAmpReadsArrayStateCorrectly) {
  // The transistor-level sensing chain digitizes the same device states
  // the array stores.
  core::SenseAmpConfig saCfg;
  core::SenseAmpCircuit sa(saCfg);
  EXPECT_TRUE(sa.simulateRead(true).bitRead);
  EXPECT_FALSE(sa.simulateRead(false).bitRead);
}

TEST(Integration, RetentionTradeoffNarrative) {
  // Lower coercive voltage -> faster, lower-power writes but shorter
  // retention; the width knob restores it (paper §6.2.4).
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  const auto cmp = core::compareRetention(params, 1.244, 65e-9 * 45e-9);
  EXPECT_LT(cmp.fefetLog10Seconds, cmp.feramLog10Seconds);
  core::FefetParams wide = params;
  wide.width = cmp.fefetWidthForParity;
  const auto window = core::analyzeHysteresis(wide);
  EXPECT_TRUE(window.nonvolatile);  // the widened device still works
}

TEST(Integration, EnduranceSmoke) {
  // 20 full write/read cycles on the 2T cell: state always correct and
  // read currents stay separated (no drift accumulation).
  core::Cell2TConfig cfg;
  core::Cell2T cell(cfg);
  double iOnMin = 1e9, iOffMax = 0.0;
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cell.write(true, 800e-12).bitAfter) << k;
    iOnMin = std::min(iOnMin, cell.read().readCurrent);
    ASSERT_FALSE(cell.write(false, 900e-12).bitAfter) << k;
    iOffMax = std::max(iOffMax, cell.read().readCurrent);
  }
  EXPECT_GT(iOnMin / std::max(iOffMax, 1e-15), 1e3);
}

}  // namespace
}  // namespace fefet
