// Shard lease board unit tests: board create/resume/mismatch wipe, torn
// lease-journal recovery, fencing-token monotonicity across steals, the
// expiry→reclaim race under two concurrent claimants, and the property
// the whole subsystem exists for — a first-wins merge over overlapping
// ownership epochs that is bit-identical to a single-process run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/stats.h"
#include "sim/shard_lease.h"
#include "sim/sweep_engine.h"
#include "sim/sweep_journal.h"

namespace fefet {
namespace {

/// The deterministic toy payload every test worker computes: a pure
/// function of (index, baseSeed), which is what makes duplicate points
/// from reclaimed leases bit-identical.
std::string testPayload(std::uint64_t baseSeed, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(stats::splitmix64(
                    sim::SweepEngine::pointSeed(baseSeed, index))));
  return buf;
}

std::uint32_t referenceCrc(std::uint64_t baseSeed, std::size_t points) {
  std::string all;
  for (std::size_t i = 0; i < points; ++i) {
    all += testPayload(baseSeed, i);
    all += '\n';
  }
  return sim::crc32(all);
}

sim::ShardPointFn testPointFn(std::uint64_t baseSeed) {
  return [baseSeed](std::size_t i, const sim::SweepContext& ctx) {
    EXPECT_EQ(ctx.seed, sim::SweepEngine::pointSeed(baseSeed, i));
    return testPayload(baseSeed, i);
  };
}

class ShardLeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "shard_lease_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
    config_.dir = dir_;
    config_.points = 8;
    config_.shards = 2;
    config_.baseSeed = 42;
    config_.configDigest = 0xD16E57;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  void appendRaw(const std::string& path, const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << bytes;
  }

  std::string dir_;
  sim::ShardBoardConfig config_;
};

TEST(ShardClock, AdvancesAndTracksWallTime) {
  // The lease clock is CLOCK_BOOTTIME (MONOTONIC fallback): it must never
  // go backwards, and over a short awake interval it must advance by at
  // least the suspend-free wall time (BOOTTIME >= MONOTONIC elapsed; a
  // clock that froze — or one that jumped like CLOCK_REALTIME under NTP —
  // would break lease-expiry ordering).
  const std::uint64_t t0 = sim::shardClockNanos();
  const auto wall0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t t1 = sim::shardClockNanos();
  const auto wallElapsedNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count());
  ASSERT_GE(t1, t0);
  // Awake time counts fully; allow generous scheduler slack on the top.
  EXPECT_GE(t1 - t0, wallElapsedNs / 2);
  // Consecutive reads are non-decreasing.
  std::uint64_t prev = sim::shardClockNanos();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = sim::shardClockNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST_F(ShardLeaseTest, CreateResumeAndMismatchWipe) {
  sim::ShardLeaseBoard::create(config_);
  {
    sim::ShardLeaseBoard board(config_);
    ASSERT_TRUE(board.tryClaim("w0", 30.0).has_value());
  }
  // Matching create() resumes: the claim above survives.
  sim::ShardLeaseBoard::create(config_);
  {
    sim::ShardLeaseBoard board(config_);
    const auto state = board.state();
    ASSERT_EQ(state.shards.size(), 2u);
    EXPECT_TRUE(state.shards[0].held || state.shards[1].held);
  }
  // A different run shape wipes the stale board…
  sim::ShardBoardConfig other = config_;
  other.points = 9;
  sim::ShardLeaseBoard::create(other);
  {
    sim::ShardLeaseBoard board(other);
    const auto state = board.state();
    for (const auto& s : state.shards) EXPECT_FALSE(s.held);
  }
  // …so opening with the old shape now fails the header check.
  EXPECT_THROW(sim::ShardLeaseBoard board(config_), SimulationError);
}

TEST_F(ShardLeaseTest, BalancedRangesPartitionThePointSpace) {
  config_.points = 10;
  config_.shards = 3;
  sim::ShardLeaseBoard::create(config_);
  sim::ShardLeaseBoard board(config_);
  std::size_t covered = 0;
  std::size_t expectBegin = 0;
  for (int k = 0; k < config_.shards; ++k) {
    const auto range = board.rangeOf(k);
    EXPECT_EQ(range.begin, expectBegin);
    EXPECT_GE(range.size(), config_.points / config_.shards);
    covered += range.size();
    expectBegin = range.end;
  }
  EXPECT_EQ(covered, config_.points);
  EXPECT_EQ(expectBegin, config_.points);
}

TEST_F(ShardLeaseTest, TornTailInLeaseJournalIsSkipped) {
  sim::ShardLeaseBoard::create(config_);
  sim::ShardLeaseBoard board(config_);
  const auto claim = board.tryClaim("w0", 30.0);
  ASSERT_TRUE(claim.has_value());
  // A crashed writer leaves an unterminated fragment; the next record is
  // '\n'-prefixed, so replay skips the damage and keeps both epochs.
  appendRaw(board.leaseJournalPath(), "{\"crc\":\"dead");
  const auto state = board.state();
  EXPECT_TRUE(state.shards[claim->shard].held);
  EXPECT_EQ(state.shards[claim->shard].owner, "w0");
  // The board still accepts appends after the torn tail.
  board.release(*claim, "w0", /*complete=*/true);
  EXPECT_TRUE(board.state().shards[claim->shard].complete);
}

TEST_F(ShardLeaseTest, FencingTokensAreMonotonicAcrossSteals) {
  config_.shards = 1;
  sim::ShardLeaseBoard::create(config_);
  sim::ShardLeaseBoard board(config_);

  const auto first = board.tryClaim("w0", 30.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->token, 1u);
  EXPECT_FALSE(first->stolen);
  // A validly held shard is not claimable.
  EXPECT_FALSE(board.tryClaim("wx", 30.0).has_value());
  board.release(*first, "w0", /*complete=*/false);

  // Re-acquire after release: next epoch, not a steal.
  const auto second = board.tryClaim("w1", 0.05);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->shard, first->shard);
  EXPECT_EQ(second->token, 2u);
  EXPECT_FALSE(second->stolen);

  // Renewing does not advance the epoch…
  ASSERT_TRUE(board.renew(*second, "w1", 0.05));
  EXPECT_EQ(board.state().shards[second->shard].token, 2u);

  // …but stealing after expiry does, and fences the old holder out.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const auto third = board.tryClaim("w2", 30.0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->shard, second->shard);
  EXPECT_EQ(third->token, 3u);
  EXPECT_TRUE(third->stolen);
  EXPECT_FALSE(board.renew(*second, "w1", 30.0));
  EXPECT_EQ(board.state().shards[third->shard].owner, "w2");
}

TEST_F(ShardLeaseTest, ExpiryReclaimRaceHasExactlyOneWinner) {
  config_.shards = 1;
  sim::ShardLeaseBoard::create(config_);
  sim::ShardLeaseBoard holderBoard(config_);
  const auto holder = holderBoard.tryClaim("holder", 0.05);
  ASSERT_TRUE(holder.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  std::atomic<int> winners{0};
  std::atomic<int> stolen{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < 2; ++t) {
    racers.emplace_back([&, t] {
      sim::ShardLeaseBoard board(config_);
      const auto claim = board.tryClaim("racer" + std::to_string(t), 30.0);
      if (claim) {
        winners.fetch_add(1);
        if (claim->stolen) stolen.fetch_add(1);
      }
    });
  }
  for (auto& r : racers) r.join();

  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(stolen.load(), 1);
  // The lapsed holder is fenced out by the winner's higher token.
  EXPECT_FALSE(holderBoard.renew(*holder, "holder", 30.0));
}

TEST_F(ShardLeaseTest, WorkerCompletesBoardAndMergeMatchesReference) {
  sim::ShardLeaseBoard::create(config_);
  sim::ShardWorkerOptions options;
  options.board = config_;
  options.owner = "solo";
  const auto report = sim::runShardWorker(options, testPointFn(42));

  EXPECT_TRUE(report.allComplete);
  EXPECT_EQ(report.pointsRun, config_.points);
  EXPECT_EQ(report.pointsSkipped, 0u);
  EXPECT_EQ(report.shardsCompleted, config_.shards);
  EXPECT_FALSE(report.deadlineExpired);

  const auto merge = sim::mergeShardJournals(config_);
  EXPECT_TRUE(merge.complete);
  EXPECT_EQ(merge.records.size(), config_.points);
  EXPECT_EQ(merge.missing, 0u);
  EXPECT_EQ(merge.duplicates, 0u);
  EXPECT_EQ(merge.resultsCrc, referenceCrc(42, config_.points));
}

TEST_F(ShardLeaseTest, DuplicatePointsMergeFirstWinsBitIdentical) {
  sim::ShardLeaseBoard::create(config_);
  sim::ShardLeaseBoard board(config_);

  // A dead predecessor journaled part of shard 0 — including one point
  // twice (its own crash-retry) — then vanished without releasing.
  {
    sim::ShardJournalWriter writer(board.shardJournalPath(0), config_);
    writer.appendPoint(0, testPayload(42, 0));
    writer.appendPoint(1, testPayload(42, 1));
    writer.appendPoint(1, testPayload(42, 1));
  }
  // A survivor works the whole board: it skips the durable points and
  // fills the gaps.
  sim::ShardWorkerOptions options;
  options.board = config_;
  options.owner = "survivor";
  const auto report = sim::runShardWorker(options, testPointFn(42));
  EXPECT_TRUE(report.allComplete);
  EXPECT_EQ(report.pointsSkipped, 2u);  // in-range uniques found durable
  EXPECT_EQ(report.pointsRun, config_.points - 2);

  const auto merge = sim::mergeShardJournals(config_);
  EXPECT_TRUE(merge.complete);
  EXPECT_EQ(merge.records.size(), config_.points);
  EXPECT_GE(merge.duplicates, 1u);
  EXPECT_EQ(merge.resultsCrc, referenceCrc(42, config_.points));
}

TEST_F(ShardLeaseTest, ExpiredDeadlineStopsTheWorkerBeforeAnyPoint) {
  sim::ShardLeaseBoard::create(config_);
  sim::ShardWorkerOptions options;
  options.board = config_;
  options.owner = "late";
  options.deadline = Deadline::after(-1.0);
  const auto report = sim::runShardWorker(options, testPointFn(42));
  EXPECT_TRUE(report.deadlineExpired);
  EXPECT_EQ(report.pointsRun, 0u);
  EXPECT_FALSE(sim::mergeShardJournals(config_).complete);
}

TEST_F(ShardLeaseTest, LenientLoadSkipsDamageStrictStops) {
  const std::string path = dir_;  // reuse the tempdir name for one file
  std::string journalPath = path + ".journal";
  std::remove(journalPath.c_str());
  {
    sim::SweepJournal journal(journalPath, 3, 7, 99);
    journal.appendPoint(0, "alpha");
  }
  appendRaw(journalPath, "garbage without structure\n");
  {
    // Reopen in append mode and add a valid successor record.
    sim::ShardBoardConfig cfg;
    cfg.points = 3;
    cfg.baseSeed = 7;
    cfg.configDigest = 99;
    sim::ShardJournalWriter writer(journalPath, cfg);
    writer.appendPoint(2, "gamma");
  }
  const auto strict = sim::SweepJournal::load(journalPath, 3, 7, 99,
                                              sim::JournalLoadMode::kStrict);
  EXPECT_EQ(strict.records.size(), 1u);  // stops at the damage
  const auto lenient = sim::SweepJournal::load(journalPath, 3, 7, 99,
                                               sim::JournalLoadMode::kLenient);
  EXPECT_EQ(lenient.records.size(), 2u);  // skips it and keeps scanning
  EXPECT_GE(lenient.skippedLines, 1u);
  std::remove(journalPath.c_str());
}

}  // namespace
}  // namespace fefet
