// Tests of the 2T FEFET memory cell (paper §4, Figs. 5-6): write, read,
// hold, non-destructive reads, the 550 ps / 0.68 V anchor and energies.
#include <cmath>
#include <gtest/gtest.h>

#include "core/cell2t.h"
#include "core/materials.h"

namespace fefet::core {
namespace {

Cell2TConfig defaultConfig() {
  Cell2TConfig cfg;
  cfg.fefet.lk = fefetMaterial();
  return cfg;
}

TEST(Cell2T, StateTargetsAreSeparated) {
  Cell2T cell(defaultConfig());
  EXPECT_GT(cell.onPolarization(), 0.15);
  EXPECT_LT(std::abs(cell.offPolarization()), 0.01);
}

TEST(Cell2T, SetStoredBitRoundTrip) {
  Cell2T cell(defaultConfig());
  cell.setStoredBit(true);
  EXPECT_TRUE(cell.storedBit());
  cell.setStoredBit(false);
  EXPECT_FALSE(cell.storedBit());
}

TEST(Cell2T, WriteOneAtPaperAnchor) {
  Cell2T cell(defaultConfig());
  cell.setStoredBit(false);
  const auto r = cell.write(true, 550e-12);
  EXPECT_TRUE(r.bitAfter);
  EXPECT_GT(r.finalPolarization, 0.1);
  EXPECT_GE(r.writeLatency, 0.0);
  EXPECT_LT(r.writeLatency, 700e-12);
  EXPECT_GT(r.totalEnergy, 0.0);
}

TEST(Cell2T, WriteZeroAtPaperAnchor) {
  Cell2T cell(defaultConfig());
  cell.setStoredBit(true);
  const auto r = cell.write(false, 550e-12);
  EXPECT_FALSE(r.bitAfter);
  // A minimum-width erase lands just inside the OFF basin; the next
  // gate-grounded cycle (here: a read) completes the relaxation.
  EXPECT_LT(r.finalPolarization, 0.09);
  const auto read = cell.read();
  EXPECT_FALSE(read.bitAfter);
  EXPECT_LT(cell.polarization(), 0.02);
}

TEST(Cell2T, MinimumWritePulseMatchesCalibration) {
  // The calibrated material writes (worst polarity) in ~550 ps at 0.68 V.
  Cell2T cell(defaultConfig());
  const double t1 = cell.minimumWritePulse(true, 0.68);
  const double t0 = cell.minimumWritePulse(false, 0.68);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t0, 0.0);
  EXPECT_NEAR(std::max(t1, t0), 550e-12, 40e-12);
}

TEST(Cell2T, WriteFasterAtHigherVoltage) {
  Cell2T cell(defaultConfig());
  const double tLow = cell.minimumWritePulse(true, 0.6);
  const double tHigh = cell.minimumWritePulse(true, 0.9);
  ASSERT_GT(tLow, 0.0);
  ASSERT_GT(tHigh, 0.0);
  EXPECT_LT(tHigh, tLow);
}

TEST(Cell2T, WriteFailsInsideHysteresisWindow) {
  // 0.30 V is inside the window: no pulse length can flip the cell.
  Cell2T cell(defaultConfig());
  EXPECT_LT(cell.minimumWritePulse(true, 0.30, 2e-9), 0.0);
}

TEST(Cell2T, ReadDistinguishesStates) {
  Cell2T cell(defaultConfig());
  cell.setStoredBit(true);
  const auto r1 = cell.read();
  cell.setStoredBit(false);
  const auto r0 = cell.read();
  EXPECT_GT(r1.readCurrent, 1e-5);
  EXPECT_LT(r0.readCurrent, 1e-8);
  EXPECT_GT(r1.readCurrent / std::max(r0.readCurrent, 1e-15), 1e4);
}

TEST(Cell2T, ReadIsNonDestructive) {
  // Paper §6.2.1: read-disturb-free operation.  Five consecutive reads of
  // each state leave the polarization unchanged.
  Cell2T cell(defaultConfig());
  for (bool bit : {true, false}) {
    cell.setStoredBit(bit);
    const double p0 = cell.polarization();
    for (int i = 0; i < 5; ++i) {
      const auto r = cell.read();
      EXPECT_EQ(r.bitAfter, bit) << "read " << i;
    }
    EXPECT_NEAR(cell.polarization(), p0, 0.05 * std::abs(cell.onPolarization()));
  }
}

TEST(Cell2T, HoldRetainsBothStates) {
  Cell2T cell(defaultConfig());
  for (bool bit : {true, false}) {
    cell.setStoredBit(bit);
    const auto r = cell.hold(50e-9);
    EXPECT_EQ(r.bitAfter, bit);
  }
}

TEST(Cell2T, WriteEnergySmallerThanFemtojouleScale) {
  // Cell-level write energy is fJ-class (the pJ numbers of Table 3 are
  // macro-level with wires and drivers).
  Cell2T cell(defaultConfig());
  cell.setStoredBit(false);
  const auto r = cell.write(true, 550e-12);
  EXPECT_GT(r.totalEnergy, 1e-17);
  EXPECT_LT(r.totalEnergy, 50e-15);
}

TEST(Cell2T, EnergyBookkeepingSumsSources) {
  Cell2T cell(defaultConfig());
  cell.setStoredBit(false);
  const auto r = cell.write(true, 550e-12);
  double sum = 0.0;
  for (const auto& [name, e] : r.sourceEnergy) sum += e;
  EXPECT_NEAR(sum, r.totalEnergy, 1e-18);
  EXPECT_EQ(r.sourceEnergy.count("Vws"), 1u);
  EXPECT_EQ(r.sourceEnergy.count("Vwbl"), 1u);
}

TEST(Cell2T, OverwriteCycles) {
  // Endurance-style toggling: 1,0,1,0... always lands in the right state.
  Cell2T cell(defaultConfig());
  bool bit = false;
  for (int i = 0; i < 6; ++i) {
    bit = !bit;
    const auto r = cell.write(bit, 700e-12);
    EXPECT_EQ(r.bitAfter, bit) << "cycle " << i;
  }
}

TEST(Cell2T, RequiresNonvolatileDevice) {
  Cell2TConfig cfg = defaultConfig();
  cfg.fefet.feThickness = 1.0e-9;  // monostable device
  EXPECT_THROW(Cell2T{cfg}, InvalidArgumentError);
}

// Property sweep: both polarities across write voltages succeed above the
// wall and the latency decreases with voltage.
struct WriteCase {
  bool one;
  double voltage;
};
class WriteMatrix : public ::testing::TestWithParam<WriteCase> {};

TEST_P(WriteMatrix, CompletesWithinTwoNanoseconds) {
  Cell2T cell(defaultConfig());
  const auto [one, voltage] = GetParam();
  cell.setStoredBit(!one);
  const auto r = cell.write(one, 2e-9, voltage);
  EXPECT_EQ(r.bitAfter, one) << (one ? "+" : "-") << voltage;
}

INSTANTIATE_TEST_SUITE_P(Voltages, WriteMatrix,
                         ::testing::Values(WriteCase{true, 0.60},
                                           WriteCase{true, 0.68},
                                           WriteCase{true, 0.80},
                                           WriteCase{true, 1.00},
                                           WriteCase{false, 0.60},
                                           WriteCase{false, 0.68},
                                           WriteCase{false, 0.80},
                                           WriteCase{false, 1.00}));

}  // namespace
}  // namespace fefet::core
