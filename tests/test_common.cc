// Unit tests for common: stats, RNG, formatting, tables, units, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace fefet {
namespace {

using namespace fefet::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ(0.68_V, 0.68);
  EXPECT_DOUBLE_EQ(550.0_ps, 550e-12);
  EXPECT_DOUBLE_EQ(2.25_nm, 2.25e-9);
  EXPECT_DOUBLE_EQ(0.2_fF, 0.2e-15);
  EXPECT_DOUBLE_EQ(4.82_pJ, 4.82e-12);
  EXPECT_DOUBLE_EQ(1.0_MOhm, 1e6);
}

TEST(Units, ThermalVoltage) {
  EXPECT_NEAR(constants::kThermalVoltage300K, 0.02585, 1e-4);
}

TEST(Stats, Descriptives) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(v), 2.5);
  EXPECT_NEAR(stats::stddev(v), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(stats::minOf(v), 1.0);
  EXPECT_DOUBLE_EQ(stats::maxOf(v), 4.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 100.0), 4.0);
  EXPECT_NEAR(stats::geomean(std::vector<double>{1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, GuardsEmptyInput) {
  EXPECT_THROW(stats::mean({}), InvalidArgumentError);
  EXPECT_THROW(stats::geomean(std::vector<double>{1.0, -1.0}),
               InvalidArgumentError);
}

TEST(Accumulator, StreamingMomentsMatchBatchHelpers) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  stats::Accumulator acc;
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_DOUBLE_EQ(acc.mean(), stats::mean(v));
  EXPECT_NEAR(acc.stddev(), stats::stddev(v), 1e-14);
  EXPECT_DOUBLE_EQ(acc.minimum(), 1.0);
  EXPECT_DOUBLE_EQ(acc.maximum(), 4.0);
}

TEST(Accumulator, MergeEqualsSinglePass) {
  stats::Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.normal(-2.0, 3.0));
  stats::Accumulator whole;
  for (double x : v) whole.add(x);
  // Split unevenly, including an empty part: merge must be a no-op for it.
  stats::Accumulator a, b, c, empty;
  for (int i = 0; i < 7; ++i) a.add(v[static_cast<std::size_t>(i)]);
  for (int i = 7; i < 180; ++i) b.add(v[static_cast<std::size_t>(i)]);
  for (int i = 180; i < 300; ++i) c.add(v[static_cast<std::size_t>(i)]);
  stats::Accumulator merged;
  merged.merge(a);
  merged.merge(empty);
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.minimum(), whole.minimum());
  EXPECT_DOUBLE_EQ(merged.maximum(), whole.maximum());
}

TEST(Accumulator, FromMomentsRoundTrips) {
  stats::Accumulator acc;
  for (double x : {2.0, 4.0, 9.0}) acc.add(x);
  const auto rebuilt = stats::Accumulator::fromMoments(
      acc.count(), acc.mean(), acc.sumSquaredDeviations(), acc.minimum(),
      acc.maximum());
  EXPECT_EQ(rebuilt.count(), acc.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), acc.mean());
  EXPECT_NEAR(rebuilt.stddev(), acc.stddev(), 1e-14);
  EXPECT_DOUBLE_EQ(rebuilt.minimum(), acc.minimum());
  EXPECT_DOUBLE_EQ(rebuilt.maximum(), acc.maximum());
}

TEST(Accumulator, GuardsInsufficientCounts) {
  stats::Accumulator acc;
  EXPECT_THROW(acc.mean(), InvalidArgumentError);
  EXPECT_THROW(acc.minimum(), InvalidArgumentError);
  acc.add(1.0);
  EXPECT_THROW(acc.stddev(), InvalidArgumentError);  // needs n >= 2
  EXPECT_DOUBLE_EQ(acc.mean(), 1.0);
}

TEST(Splitmix64, DeterministicAndWellMixed) {
  EXPECT_EQ(stats::splitmix64(42), stats::splitmix64(42));
  // Neighboring inputs must land far apart (the whole point of the hash).
  EXPECT_NE(stats::splitmix64(1), stats::splitmix64(2));
  EXPECT_NE(stats::splitmix64(0), 0u);
}

TEST(Rng, DeterministicPerSeed) {
  stats::Rng a(42), b(42), c(43);
  const double x = a.uniform(0.0, 1.0);
  EXPECT_DOUBLE_EQ(x, b.uniform(0.0, 1.0));
  EXPECT_NE(x, c.uniform(0.0, 1.0));
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  stats::Rng rng(7);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(4.0);
  EXPECT_NEAR(acc / n, 0.25, 0.02);
}

TEST(Strings, SiFormat) {
  EXPECT_EQ(strings::siFormat(550e-12, "s"), "550 ps");
  EXPECT_EQ(strings::siFormat(0.68, "V"), "680 mV");
  EXPECT_EQ(strings::siFormat(4.82e-12, "J"), "4.82 pJ");
  EXPECT_EQ(strings::siFormat(0.0, "A"), "0 A");
  EXPECT_EQ(strings::siFormat(-1.5e6, "Hz"), "-1.5 MHz");
}

TEST(Strings, FixedAndPad) {
  EXPECT_EQ(strings::fixedFormat(0.6789, 2), "0.68");
  EXPECT_EQ(strings::padLeft("x", 3), "  x");
  EXPECT_EQ(strings::padRight("x", 3), "x  ");
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22"});
  EXPECT_EQ(t.rowCount(), 2u);
  const std::string s = t.toString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InvalidArgumentError);
}

TEST(CsvWriter, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "a,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    FEFET_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fefet
