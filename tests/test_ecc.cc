// Tests of the SECDED extended-Hamming codec used by the resilient word
// path: every single-bit error (data, check or parity) is corrected,
// every double-bit error is detected, clean words pass through.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.h"
#include "core/ecc.h"

namespace fefet::core {
namespace {

std::uint64_t patternFor(int dataBits, unsigned salt) {
  std::uint64_t v = 0x9E3779B97F4A7C15ull * (salt + 1);
  if (dataBits < 64) v &= (std::uint64_t{1} << dataBits) - 1;
  return v;
}

TEST(Ecc, GeometryMatchesHammingBounds) {
  // Classic SECDED geometries: (39,32), (72,64) — plus small widths.
  EXPECT_EQ(SecdedCodec(4).parityBits(), 4);    // Hamming(7,4) + parity
  EXPECT_EQ(SecdedCodec(8).parityBits(), 5);    // (13,8)
  EXPECT_EQ(SecdedCodec(32).parityBits(), 7);   // (39,32)
  EXPECT_EQ(SecdedCodec(64).parityBits(), 8);   // (72,64)
  EXPECT_EQ(SecdedCodec(64).codewordBits(), 72);
}

TEST(Ecc, CleanWordDecodesClean) {
  for (int width : {4, 8, 16, 32, 64}) {
    SecdedCodec codec(width);
    for (unsigned salt = 0; salt < 8; ++salt) {
      const std::uint64_t data = patternFor(width, salt);
      const auto check = codec.encode(data);
      const auto out = codec.decode(data, check);
      EXPECT_EQ(out.status, EccStatus::kClean) << width << " " << salt;
      EXPECT_EQ(out.data, data);
    }
  }
}

TEST(Ecc, EverySingleDataBitErrorIsCorrected) {
  for (int width : {4, 8, 32, 64}) {
    SecdedCodec codec(width);
    const std::uint64_t data = patternFor(width, 3);
    const auto check = codec.encode(data);
    for (int bit = 0; bit < width; ++bit) {
      const std::uint64_t corrupted = data ^ (std::uint64_t{1} << bit);
      const auto out = codec.decode(corrupted, check);
      EXPECT_EQ(out.status, EccStatus::kCorrectedSingle)
          << "width " << width << " bit " << bit;
      EXPECT_EQ(out.data, data) << "width " << width << " bit " << bit;
      EXPECT_EQ(out.correctedBit, bit);
    }
  }
}

TEST(Ecc, EverySingleCheckBitErrorIsCorrected) {
  for (int width : {8, 32}) {
    SecdedCodec codec(width);
    const std::uint64_t data = patternFor(width, 5);
    const auto check = codec.encode(data);
    for (int bit = 0; bit < codec.parityBits(); ++bit) {
      const auto out =
          codec.decode(data, check ^ static_cast<std::uint16_t>(1u << bit));
      EXPECT_EQ(out.status, EccStatus::kCorrectedSingle)
          << "width " << width << " check bit " << bit;
      EXPECT_EQ(out.data, data);
    }
  }
}

TEST(Ecc, EveryDoubleBitErrorIsDetectedNotMiscorrected) {
  // Exhaustive over all codeword bit pairs for the 8-bit geometry.
  SecdedCodec codec(8);
  const std::uint64_t data = patternFor(8, 7);
  const std::uint16_t check = codec.encode(data);
  const int n = codec.codewordBits();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::uint64_t d = data;
      std::uint16_t c = check;
      if (a < 8) d ^= std::uint64_t{1} << a;
      else c ^= static_cast<std::uint16_t>(1u << (a - 8));
      if (b < 8) d ^= std::uint64_t{1} << b;
      else c ^= static_cast<std::uint16_t>(1u << (b - 8));
      const auto out = codec.decode(d, c);
      EXPECT_EQ(out.status, EccStatus::kDetectedDouble)
          << "bits " << a << "," << b;
    }
  }
}

TEST(Ecc, DoubleErrorsDetectedAtWideWidths) {
  SecdedCodec codec(64);
  const std::uint64_t data = patternFor(64, 11);
  const auto check = codec.encode(data);
  for (int a = 0; a < 64; a += 7) {
    for (int b = a + 1; b < 64; b += 5) {
      const std::uint64_t d =
          data ^ (std::uint64_t{1} << a) ^ (std::uint64_t{1} << b);
      EXPECT_EQ(codec.decode(d, check).status, EccStatus::kDetectedDouble);
    }
  }
}

TEST(Ecc, RejectsBadWidths) {
  EXPECT_THROW(SecdedCodec(0), InvalidArgumentError);
  EXPECT_THROW(SecdedCodec(-3), InvalidArgumentError);
  EXPECT_THROW(SecdedCodec(65), InvalidArgumentError);
}

}  // namespace
}  // namespace fefet::core
