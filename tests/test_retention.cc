// Tests of the single-domain retention model (paper §6.2.4).
#include "ferro/retention.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"

namespace fefet::ferro {
namespace {

constexpr double kArea = 65e-9 * 45e-9;
constexpr double kPr = 0.4636;
constexpr double kYear = 365.25 * 24.0 * 3600.0;

TEST(Retention, CalibrationHitsTarget) {
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  EXPECT_NEAR(model.retentionSeconds(1.244, kPr, kArea) / kYear, 10.0, 0.01);
}

TEST(Retention, ExponentialInCoerciveVoltage) {
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  const double lg1 = model.log10RetentionSeconds(1.244, kPr, kArea);
  const double lg2 = model.log10RetentionSeconds(0.622, kPr, kArea);
  // Halving Vc halves the exponent (above the attempt-time offset).
  const double offset = std::log10(model.params().attemptTime);
  EXPECT_NEAR((lg2 - offset) / (lg1 - offset), 0.5, 1e-6);
}

TEST(Retention, MonotoneInAreaAndVc) {
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  EXPECT_GT(model.log10RetentionSeconds(1.244, kPr, 2.0 * kArea),
            model.log10RetentionSeconds(1.244, kPr, kArea));
  EXPECT_GT(model.log10RetentionSeconds(1.244, kPr, kArea),
            model.log10RetentionSeconds(0.3, kPr, kArea));
}

TEST(Retention, FefetLowerThanFeramAtSameSize) {
  // Paper: the FEFET's device-level coercive voltage (~0.29 V, half the
  // hysteresis window) is far below FERAM's 1.24 V, so retention is lower.
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  EXPECT_LT(model.log10RetentionSeconds(0.29, kPr, kArea),
            model.log10RetentionSeconds(1.244, kPr, kArea));
}

TEST(Retention, WidthForMatchedRetention) {
  // Matching requires Vc_A * A_A == Vc_B * A_B.
  const double w = RetentionModel::widthForMatchedRetention(
      1.244, kArea, 0.29, kArea, 65e-9);
  EXPECT_NEAR(w, 65e-9 * 1.244 / 0.29, 1e-12);
  // Verify the matched design actually matches.
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  const double areaMatched = kArea * w / 65e-9;
  EXPECT_NEAR(model.log10RetentionSeconds(0.29, kPr, areaMatched),
              model.log10RetentionSeconds(1.244, kPr, kArea), 1e-6);
}

TEST(Retention, SaturatesInsteadOfOverflowing) {
  RetentionModel model;  // efficiency 1: astronomically long
  EXPECT_EQ(model.retentionSeconds(1.244, kPr, kArea), 1e300);
}

TEST(Retention, RejectsNonPhysicalInputs) {
  RetentionModel model;
  EXPECT_THROW(model.barrierEnergy(-1.0, kPr, kArea), InvalidArgumentError);
  EXPECT_THROW(model.barrierEnergy(1.0, kPr, 0.0), InvalidArgumentError);
  RetentionParams bad;
  bad.attemptTime = 0.0;
  EXPECT_THROW(RetentionModel{bad}, InvalidArgumentError);
}

// Property: retention ordering follows the barrier product Vc*Pr*A.
struct Design {
  double vc;
  double areaScale;
};
class RetentionOrdering
    : public ::testing::TestWithParam<std::pair<Design, Design>> {};

TEST_P(RetentionOrdering, BarrierProductDecides) {
  RetentionModel model;
  model.calibrateToReference(1.244, kPr, kArea, 10.0 * kYear);
  const auto [a, b] = GetParam();
  const double la =
      model.log10RetentionSeconds(a.vc, kPr, a.areaScale * kArea);
  const double lb =
      model.log10RetentionSeconds(b.vc, kPr, b.areaScale * kArea);
  const bool productLess = a.vc * a.areaScale < b.vc * b.areaScale;
  EXPECT_EQ(la < lb, productLess);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RetentionOrdering,
    ::testing::Values(std::pair<Design, Design>({0.29, 1.0}, {1.244, 1.0}),
                      std::pair<Design, Design>({0.29, 1.73}, {1.244, 1.0}),
                      std::pair<Design, Design>({1.244, 0.5}, {0.29, 4.0}),
                      std::pair<Design, Design>({0.5, 2.0}, {0.5, 3.0})));

}  // namespace
}  // namespace fefet::ferro
