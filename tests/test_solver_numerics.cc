// Stress tests of the solver numerics: Newton damping/limiting, gmin
// continuation, adaptive step control, stiff circuits and the damped
// trapezoidal integrator's ringing suppression.
#include <cmath>
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/deadline.h"
#include "spice/extras.h"
#include "spice/mna.h"
#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::spice {
namespace {

using shapes::dc;
using shapes::pulse;

TEST(Newton, ConvergesOnStackedExponentials) {
  // Two diodes in series with a resistor: nested exponentials are the
  // classic Newton-overshoot trap; damping must keep it on track.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(2.0));
  n.add<Resistor>("R", n.node("in"), n.node("a"), 1e3);
  n.add<Diode>("D1", n.node("a"), n.node("b"));
  n.add<Diode>("D2", n.node("b"), n.ground());
  Simulator sim(n);
  const auto stats = sim.solveDc();
  EXPECT_TRUE(stats.converged);
  const double va = sim.nodeVoltage("a");
  const double vb = sim.nodeVoltage("b");
  EXPECT_GT(va, vb);
  EXPECT_NEAR(va - vb, vb, 0.05);  // identical diodes share the drop
  EXPECT_NEAR((2.0 - va) / 1e3,
              1e-14 * (std::exp(vb / 0.02585) - 1.0),
              (2.0 - va) / 1e3 * 0.2);
}

TEST(Newton, ColdStartFarFromSolution) {
  // Seed every node at a hostile initial point; the solve must recover.
  Netlist n;
  n.add<VoltageSource>("Vdd", n.node("vdd"), n.ground(), dc(0.68));
  n.add<VoltageSource>("Vin", n.node("in"), n.ground(), dc(0.34));
  n.add<MosfetDevice>("MP", n.node("out"), n.node("in"), n.node("vdd"),
                      xtor::pmos45(), 260e-9);
  n.add<MosfetDevice>("MN", n.node("out"), n.node("in"), n.ground(),
                      xtor::nmos45(), 130e-9);
  Simulator sim(n);
  sim.setNodeVoltage("out", -5.0);
  sim.setNodeVoltage("vdd", 5.0);
  const auto stats = sim.solveDc();
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(sim.nodeVoltage("out"), 0.05);
  EXPECT_LT(sim.nodeVoltage("out"), 0.63);
}

TEST(Transient, StiffTwoTimeConstantCircuit) {
  // tau1 = 1 ps, tau2 = 10 ns: four decades of stiffness.  The adaptive
  // controller must resolve the fast pole without crawling through the
  // slow one (bounded step count).
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R1", n.node("in"), n.node("f"), 10.0);    // 1 ps
  n.add<Capacitor>("C1", n.node("f"), n.ground(), 0.1e-12);
  n.add<Resistor>("R2", n.node("f"), n.node("s"), 10e3);     // 10 ns
  n.add<Capacitor>("C2", n.node("s"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 50e-9;
  const auto r = sim.runTransient(options, {Probe::v("f"), Probe::v("s")});
  EXPECT_NEAR(r.waveform.finalValue("v(f)"), 1.0, 0.01);
  EXPECT_NEAR(r.waveform.finalValue("v(s)"), 1.0, 0.02);
  // Analytic slow response at t = 10 ns: 1 - e^-1.
  EXPECT_NEAR(r.waveform.valueAt("v(s)", 10.06e-9), 1.0 - std::exp(-1.0),
              0.03);
  EXPECT_LT(r.stats.steps, 2000);
}

TEST(Transient, StepRejectionRecovers) {
  // A brutal edge (1 fs rise) forces step rejections; the run must still
  // complete and land on the right value.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 1e-9, 1e-15, 1.0, 1e-15));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 100.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 3e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  EXPECT_NEAR(r.waveform.finalValue("v(out)"), 1.0, 0.02);
}

TEST(Transient, DampedTrapSuppressesBranchRinging) {
  // A capacitor hard across a pulsing ideal source: the branch current
  // after the edge must decay to ~0 instead of ringing at +/-C dV/dt.
  Netlist n;
  auto* v = n.add<VoltageSource>("V1", n.node("a"), n.ground(),
                                 pulse(0.0, 1.0, 0.1e-9, 20e-12, 1.0,
                                       20e-12));
  n.add<Capacitor>("C", n.node("a"), n.ground(), 10e-15);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 2e-9;
  options.dtMax = 10e-12;
  const auto r = sim.runTransient(options, {Probe::i("V1")});
  // Well after the edge, the current must have decayed by >100x.
  const auto t = r.waveform.time();
  const auto& i = r.waveform.column("i(V1)");
  double late = 0.0;
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k] > 1.5e-9) late = std::max(late, std::abs(i[k]));
  }
  const double peak = std::max(std::abs(r.waveform.maximum("i(V1)")),
                               std::abs(r.waveform.minimum("i(V1)")));
  EXPECT_LT(late, peak / 100.0);
  (void)v;
}

TEST(Transient, ThrowsOnImpossibleCircuitInsteadOfHanging) {
  // Shorted opposing ideal sources: the Jacobian is structurally singular;
  // the run must fail fast with a NumericalError, not loop.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.0));
  n.add<VoltageSource>("V2", n.node("a"), n.ground(), dc(2.0));
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  EXPECT_THROW(sim.runTransient(options, {Probe::v("a")}), NumericalError);
}

TEST(Transient, AdaptiveStepGrowsAfterTheEdge) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 10e-12, 1.0, 10e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 0.1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 100e-9;
  options.dtInitial = 1e-13;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  // 100 ns at the initial 0.1 ps step would be 1e6 steps; growth must cut
  // that by orders of magnitude.
  EXPECT_LT(r.stats.steps, 5000);
  EXPECT_NEAR(r.waveform.finalValue("v(out)"), 1.0, 0.01);
}

TEST(Transient, StatsSurfaceTheRetryHistory) {
  // A clean run reports its effort: steps, Newton iterations, the
  // smallest dt attempted and the wall-clock time — and no rescues.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 10e-12, 1.0, 10e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 0.1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 10e-9;
  const auto r = sim.runTransient(options, {Probe::v("out")});
  EXPECT_GT(r.stats.steps, 0);
  EXPECT_GT(r.stats.newtonIterations, 0);
  EXPECT_GT(r.stats.smallestDt, 0.0);
  EXPECT_LE(r.stats.smallestDt, options.dtInitial);
  EXPECT_GE(r.stats.wallSeconds, 0.0);
  EXPECT_EQ(r.stats.gminEscalations, 0);
}

TEST(Transient, StepBudgetAbortsWithDiagnostics) {
  // A pathological budget: the run must terminate within it and the
  // NumericalError must carry the retry history, not just a message.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(),
                       pulse(0.0, 1.0, 0.0, 1e-12, 1.0, 1e-12));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 10.0);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1.0;  // absurd: ~1e11 steps at dtMax
  options.maxSteps = 50;
  try {
    sim.runTransient(options, {Probe::v("out")});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    ASSERT_TRUE(e.hasDiagnostics());
    const auto& d = e.diagnostics();
    EXPECT_GE(d.steps, 1);
    EXPECT_LE(d.steps, 50);
    EXPECT_GT(d.newtonIterations, 0);
    EXPECT_GT(d.smallestDt, 0.0);
    EXPECT_GE(d.time, 0.0);
    // The rendered what() embeds the same history.
    EXPECT_NE(std::string(e.what()).find("dt"), std::string::npos);
  }
}

TEST(Transient, WallClockBudgetAborts) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e6;      // effectively unbounded work...
  options.dtMax = 1e-9;
  options.maxWallSeconds = 0.05;  // ...cut short by the wall budget
  try {
    sim.runTransient(options, {Probe::v("out")});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    ASSERT_TRUE(e.hasDiagnostics());
    EXPECT_GT(e.diagnostics().steps, 0);
  }
}

TEST(Transient, UnderflowNamesTheTimePoint) {
  // The singular two-source deck again, but checking the failure CONTENT:
  // the error must name the time point and the smallest dt attempted.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.0));
  n.add<VoltageSource>("V2", n.node("a"), n.ground(), dc(2.0));
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  try {
    sim.runTransient(options, {Probe::v("a")});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    ASSERT_TRUE(e.hasDiagnostics());
    const auto& d = e.diagnostics();
    EXPECT_GE(d.time, 0.0);
    EXPECT_GT(d.dtCuts, 0);
    EXPECT_GT(d.smallestDt, 0.0);
    const std::string what = e.what();
    EXPECT_NE(what.find("underflow"), std::string::npos) << what;
    EXPECT_NE(what.find("smallest dt"), std::string::npos) << what;
  }
}

TEST(Transient, RejectsBadBackoffFactor) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("a"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("a"), n.ground(), 1e3);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  options.dtCutFactor = 1.0;
  EXPECT_THROW(sim.runTransient(options, {Probe::v("a")}),
               InvalidArgumentError);
  options.dtCutFactor = 0.0;
  EXPECT_THROW(sim.runTransient(options, {Probe::v("a")}),
               InvalidArgumentError);
}

TEST(Mna, AddGminFeedsTheRowScale) {
  // Regression: addGmin used to write residual_ directly, bypassing the
  // per-row |contribution| accumulation — so the relative convergence test
  // divided by a scale that ignored the gmin current entirely.
  MnaSystem sys(2, /*useSparse=*/false);
  const std::vector<double> x = {2.0, -1.0};
  const SystemView view(x, 2);
  sys.clear();
  const double gmin = 1e-9;
  sys.addGmin(gmin, view, 2);
  EXPECT_DOUBLE_EQ(sys.residual()[0], gmin * 2.0);
  EXPECT_DOUBLE_EQ(sys.residual()[1], gmin * -1.0);
  EXPECT_DOUBLE_EQ(sys.rowScale()[0], gmin * 2.0);
  EXPECT_DOUBLE_EQ(sys.rowScale()[1], gmin * 1.0);  // |gmin * v|
}

TEST(Dc, GminContinuationRescuesHardStart) {
  // A floating high-impedance divider string of diodes; the direct solve
  // from zero may wander, the continuation must land it.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("top"), n.ground(), dc(3.0));
  n.add<Diode>("D1", n.node("top"), n.node("m1"));
  n.add<Diode>("D2", n.node("m1"), n.node("m2"));
  n.add<Diode>("D3", n.node("m2"), n.node("m3"));
  n.add<Diode>("D4", n.node("m3"), n.ground());
  n.add<Resistor>("Rload", n.node("m3"), n.ground(), 1e6);
  Simulator sim(n);
  const auto stats = sim.solveDc();
  EXPECT_TRUE(stats.converged);
  // All drops positive and ordered.
  const double m1 = sim.nodeVoltage("m1");
  const double m2 = sim.nodeVoltage("m2");
  const double m3 = sim.nodeVoltage("m3");
  EXPECT_GT(3.0, m1);
  EXPECT_GT(m1, m2);
  EXPECT_GT(m2, m3);
  EXPECT_GT(m3, 0.0);
}

TEST(Transient, DeadlineExceededCarriesTheRetryHistory) {
  // The wall-budget abort must be catchable as the precise DeadlineExceeded
  // type AND carry the full transient retry history (dt cuts, gmin
  // escalations, step counts) so a sweep can report WHY a point timed out.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e6;  // effectively unbounded work
  options.dtMax = 1e-9;
  options.maxWallSeconds = 0.05;
  try {
    sim.runTransient(options, {Probe::v("out")});
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    ASSERT_TRUE(e.hasDiagnostics());
    const auto& d = e.diagnostics();
    EXPECT_GT(d.steps, 0);
    EXPECT_GT(d.newtonIterations, 0);
    EXPECT_GT(d.smallestDt, 0.0);
    EXPECT_GE(d.time, 0.0);
    EXPECT_GE(d.dtCuts, 0);
    EXPECT_GE(d.gminEscalations, 0);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(Transient, CallerDeadlineBoundsTheRun) {
  // The deadline handed down by a sweep point bounds the run even with no
  // maxWallSeconds set.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e6;
  options.dtMax = 1e-9;
  options.deadline = Deadline::after(0.05);
  EXPECT_THROW(sim.runTransient(options, {Probe::v("out")}),
               DeadlineExceeded);
}

TEST(Transient, PreExpiredDeadlineAbortsImmediately) {
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e-9;
  options.deadline = Deadline::after(0.0);  // already expired
  EXPECT_THROW(sim.runTransient(options, {Probe::v("out")}),
               DeadlineExceeded);
}

TEST(Transient, CancelTokenAbortsMidRun) {
  // The sweep watchdog's cancellation path: a token attached to the
  // deadline flips mid-run and the transient stops with DeadlineExceeded.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  CancelToken token;
  TransientOptions options;
  options.duration = 1e6;
  options.dtMax = 1e-9;
  options.deadline = Deadline::unlimited().withToken(token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.requestCancel();
  });
  EXPECT_THROW(sim.runTransient(options, {Probe::v("out")}),
               DeadlineExceeded);
  canceller.join();
}

TEST(Transient, DeadlineExceededIsCatchableAsNumericalError) {
  // Compatibility guarantee: pre-deadline callers catching NumericalError
  // keep working unchanged.
  Netlist n;
  n.add<VoltageSource>("V1", n.node("in"), n.ground(), dc(1.0));
  n.add<Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  Simulator sim(n);
  sim.initializeUic();
  TransientOptions options;
  options.duration = 1e6;
  options.dtMax = 1e-9;
  options.maxWallSeconds = 0.05;
  EXPECT_THROW(sim.runTransient(options, {Probe::v("out")}), NumericalError);
}

}  // namespace
}  // namespace fefet::spice
