// Shard supervisor end-to-end tests: the binary re-execs itself as the
// worker process (a custom main dispatches on --shard-test-worker before
// gtest ever sees argv), so these tests exercise real fork/exec/SIGKILL
// process supervision — including the acceptance property: a worker
// SIGKILLed mid-range is restarted, its lease reclaimed, and the merged
// results CRC is bit-identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "sim/shard_lease.h"
#include "sim/shard_supervisor.h"
#include "sim/sweep_engine.h"
#include "sim/sweep_journal.h"

namespace fefet {
namespace {

// The one run shape every test (and the worker mode) agrees on.
constexpr std::size_t kPoints = 12;
constexpr int kShards = 4;
constexpr std::uint64_t kBaseSeed = 5;
constexpr std::uint64_t kDigest = 0x5B0A7D;
constexpr double kPointSleepSeconds = 0.05;  ///< makes ranges span time

std::string selfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

std::string testPayload(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(stats::splitmix64(
                    sim::SweepEngine::pointSeed(kBaseSeed, index))));
  return buf;
}

std::uint32_t referenceCrc() {
  std::string all;
  for (std::size_t i = 0; i < kPoints; ++i) {
    all += testPayload(i);
    all += '\n';
  }
  return sim::crc32(all);
}

sim::ShardBoardConfig boardConfig(const std::string& dir) {
  sim::ShardBoardConfig config;
  config.dir = dir;
  config.points = kPoints;
  config.shards = kShards;
  config.baseSeed = kBaseSeed;
  config.configDigest = kDigest;
  return config;
}

/// Worker-process entry point (reached from main() before gtest runs).
int shardTestWorkerMain(int argc, char** argv) {
  sim::ShardWorkerOptions options;
  options.leaseTtlSeconds = 0.5;
  options.pollSeconds = 0.05;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--dir=", 6) == 0) {
      dir = arg + 6;
    } else if (std::strncmp(arg, "--owner=", 8) == 0) {
      options.owner = arg + 8;
    } else if (std::strncmp(arg, "--kill-after=", 13) == 0) {
      options.killAfterPoints = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--marker=", 9) == 0) {
      options.killMarkerPath = arg + 9;
    }
  }
  if (dir.empty()) return 2;
  options.board = boardConfig(dir);
  try {
    sim::runShardWorker(options,
                        [](std::size_t i, const sim::SweepContext&) {
                          std::this_thread::sleep_for(
                              std::chrono::duration<double>(
                                  kPointSleepSeconds));
                          return testPayload(i);
                        });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard test worker: %s\n", e.what());
    return 1;
  }
  return 0;
}

class ShardSupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "shard_supervisor_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
    ASSERT_FALSE(selfExePath().empty());
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  std::vector<std::string> workerArgv() const {
    return {selfExePath(), "--shard-test-worker", "--dir=" + dir_,
            "--owner=w{slot}"};
  }

  sim::ShardSupervisorOptions supervisorOptions() const {
    sim::ShardSupervisorOptions options;
    options.board = boardConfig(dir_);
    options.workers = 2;
    options.leaseTtlSeconds = 0.5;
    options.backoffInitialSeconds = 0.02;
    return options;
  }

  std::string dir_;
};

TEST_F(ShardSupervisorTest, CleanRunMergesBitIdenticalToReference) {
  sim::ShardSupervisor supervisor(supervisorOptions());
  const auto report = supervisor.run(workerArgv());

  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.spawns, 2);
  EXPECT_EQ(report.crashes, 0);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.merge.records.size(), kPoints);
  EXPECT_EQ(report.merge.missing, 0u);
  EXPECT_EQ(report.merge.resultsCrc, referenceCrc());
}

TEST_F(ShardSupervisorTest, SelfSigkilledWorkerIsRestartedMergeIdentical) {
  // The first worker incarnation to journal 2 points SIGKILLs itself
  // mid-range (every shard holds 3) — the marker file makes the kill
  // happen exactly once, so the restarted worker finishes the board.
  auto argv = workerArgv();
  argv.push_back("--kill-after=2");
  argv.push_back("--marker=" + dir_ + "/kill.marker");

  sim::ShardSupervisor supervisor(supervisorOptions());
  const auto report = supervisor.run(argv);

  EXPECT_GE(report.crashes, 1);
  EXPECT_GE(report.restarts, 1);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.merge.missing, 0u);
  EXPECT_EQ(report.merge.resultsCrc, referenceCrc());
}

TEST_F(ShardSupervisorTest, ExternallySigkilledWorkerLeaseIsReclaimed) {
  // SIGKILL the first spawned worker from outside once it is mid-range;
  // its lease expires and is reclaimed (by its restarted self or the
  // peer), and the merge stays bit-identical.
  std::atomic<pid_t> firstPid{-1};
  auto options = supervisorOptions();
  options.onSpawn = [&firstPid](int, pid_t pid) {
    pid_t expected = -1;
    firstPid.compare_exchange_strong(expected, pid);
  };
  std::thread killer([&firstPid] {
    while (firstPid.load() < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ::kill(firstPid.load(), SIGKILL);
  });

  sim::ShardSupervisor supervisor(options);
  const auto report = supervisor.run(workerArgv());
  killer.join();

  EXPECT_GE(report.crashes, 1);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.merge.missing, 0u);
  EXPECT_EQ(report.merge.resultsCrc, referenceCrc());
}

TEST_F(ShardSupervisorTest, ExhaustedRestartBudgetDegradesToPartial) {
  // With a zero restart budget a single self-kill cannot be repaired:
  // the supervisor degrades to a partial merge instead of throwing, and
  // the points journaled before the kill survive.
  auto argv = workerArgv();
  argv.push_back("--kill-after=2");
  argv.push_back("--marker=" + dir_ + "/kill.marker");

  auto options = supervisorOptions();
  options.workers = 1;
  options.restartBudget = 0;
  sim::ShardSupervisor supervisor(options);
  const auto report = supervisor.run(argv);

  EXPECT_GE(report.crashes, 1);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_TRUE(report.restartBudgetExhausted);
  EXPECT_FALSE(report.complete());
  EXPECT_GT(report.merge.missing, 0u);
  // Whatever was durably appended before the kill survives the merge.
  EXPECT_GE(report.merge.records.size(), 2u);
}

}  // namespace
}  // namespace fefet

// Custom main: dispatch worker mode before gtest parses argv.  Defining
// main here keeps the linker from pulling gtest_main's copy in.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard-test-worker") == 0) {
      return fefet::shardTestWorkerMain(argc, argv);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
